#include "runtime/wire.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

namespace mimd::wire {

// ---------------------------------------------------------------------------
// Primitives

void Encoder::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void Encoder::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void Encoder::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Encoder::str(const std::string& s) {
  if (s.size() > kMaxFramePayload) throw WireError("string too long to encode");
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint8_t Decoder::u8() {
  if (pos_ + 1 > size_) throw WireError("truncated payload (u8)");
  return data_[pos_++];
}

std::uint32_t Decoder::u32() {
  if (pos_ + 4 > size_) throw WireError("truncated payload (u32)");
  std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                    static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                    static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                    static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
  pos_ += 4;
  return v;
}

std::uint64_t Decoder::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | hi << 32;
}

double Decoder::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string Decoder::str() {
  const std::uint32_t n = u32();
  if (pos_ + n > size_) throw WireError("truncated payload (string)");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::uint32_t Decoder::count(std::size_t min_bytes_per_element) {
  const std::uint32_t n = u32();
  if (min_bytes_per_element > 0 &&
      static_cast<std::uint64_t>(n) * min_bytes_per_element > remaining()) {
    throw WireError("element count exceeds payload size");
  }
  return n;
}

void Decoder::expect_done() const {
  if (pos_ != size_) throw WireError("trailing bytes after payload");
}

// ---------------------------------------------------------------------------
// Structures

void encode_ddg(Encoder& e, const Ddg& g) {
  e.u32(static_cast<std::uint32_t>(g.num_nodes()));
  for (const Node& n : g.nodes()) {
    e.str(n.name);
    e.i32(n.latency);
  }
  e.u32(static_cast<std::uint32_t>(g.num_edges()));
  for (const Edge& ed : g.edges()) {
    e.u32(ed.src);
    e.u32(ed.dst);
    e.i32(ed.distance);
    e.i32(ed.comm_cost);
  }
}

Ddg decode_ddg(Decoder& d) {
  Ddg g;
  const std::uint32_t nodes = d.count(5);  // 4-byte name length + latency
  for (std::uint32_t i = 0; i < nodes; ++i) {
    std::string name = d.str();
    const int latency = d.i32();
    // add_node enforces the graph's own invariants (unique, non-empty
    // names; latency >= 1) via MIMD_EXPECTS; surface those as wire errors
    // so a hostile payload reads as "bad message", not "broken contract".
    try {
      g.add_node(std::move(name), latency);
    } catch (const ContractViolation& e) {
      throw WireError(std::string("invalid graph node: ") + e.what());
    }
  }
  const std::uint32_t edges = d.count(16);
  for (std::uint32_t i = 0; i < edges; ++i) {
    const NodeId src = d.u32();
    const NodeId dst = d.u32();
    const int distance = d.i32();
    const int comm_cost = d.i32();
    if (src >= nodes || dst >= nodes) throw WireError("edge endpoint out of range");
    try {
      g.add_edge(src, dst, distance, comm_cost);
    } catch (const ContractViolation& e) {
      throw WireError(std::string("invalid graph edge: ") + e.what());
    }
  }
  return g;
}

void encode_program(Encoder& e, const PartitionedProgram& p) {
  e.i32(p.processors);
  e.u32(static_cast<std::uint32_t>(p.programs.size()));
  for (const ProcessorProgram& pp : p.programs) {
    e.i32(pp.proc);
    e.u32(static_cast<std::uint32_t>(pp.ops.size()));
    for (const Op& op : pp.ops) {
      e.u8(static_cast<std::uint8_t>(op.kind));
      e.u32(op.inst.node);
      e.i64(op.inst.iter);
      e.u32(op.edge);
      e.i32(op.peer);
    }
  }
}

PartitionedProgram decode_program(Decoder& d) {
  PartitionedProgram p;
  p.processors = d.i32();
  const std::uint32_t nprogs = d.count(8);
  p.programs.reserve(nprogs);
  for (std::uint32_t i = 0; i < nprogs; ++i) {
    ProcessorProgram pp;
    pp.proc = d.i32();
    const std::uint32_t nops = d.count(21);  // 1 + 4 + 8 + 4 + 4
    pp.ops.reserve(nops);
    for (std::uint32_t j = 0; j < nops; ++j) {
      Op op;
      const std::uint8_t kind = d.u8();
      if (kind > static_cast<std::uint8_t>(Op::Kind::Receive)) {
        throw WireError("invalid op kind");
      }
      op.kind = static_cast<Op::Kind>(kind);
      op.inst.node = d.u32();
      op.inst.iter = d.i64();
      op.edge = d.u32();
      op.peer = d.i32();
      pp.ops.push_back(op);
    }
    p.programs.push_back(std::move(pp));
  }
  return p;
}

void encode_result(Encoder& e, const ExecutionResult& r) {
  e.u32(static_cast<std::uint32_t>(r.values.size()));
  for (const std::vector<double>& vs : r.values) {
    e.u32(static_cast<std::uint32_t>(vs.size()));
    for (const double v : vs) e.f64(v);
  }
  e.f64(r.wall_seconds);
}

ExecutionResult decode_result(Decoder& d) {
  ExecutionResult r;
  const std::uint32_t nodes = d.count(4);
  r.values.resize(nodes);
  for (std::uint32_t v = 0; v < nodes; ++v) {
    const std::uint32_t n = d.count(8);
    r.values[v].reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) r.values[v].push_back(d.f64());
  }
  r.wall_seconds = d.f64();
  return r;
}

// ---------------------------------------------------------------------------
// Messages

namespace {

void encode_remote_opts(Encoder& e, const RemoteRunOptions& o) {
  e.u8(static_cast<std::uint8_t>(o.transport));
  e.u8(o.pin_threads ? 1 : 0);
  e.i32(o.work_per_cycle);
}

RemoteRunOptions decode_remote_opts(Decoder& d) {
  RemoteRunOptions o;
  const std::uint8_t t = d.u8();
  if (t > static_cast<std::uint8_t>(Transport::Spsc)) {
    throw WireError("invalid transport");
  }
  o.transport = static_cast<Transport>(t);
  o.pin_threads = d.u8() != 0;
  o.work_per_cycle = d.i32();
  return o;
}

void encode_run_request(Encoder& e, const RunRequest& m) {
  e.u64(m.program_id);
  e.i64(m.iterations);
  encode_remote_opts(e, m.opts);
}

RunRequest decode_run_request(Decoder& d) {
  RunRequest m;
  m.program_id = d.u64();
  m.iterations = d.i64();
  m.opts = decode_remote_opts(d);
  return m;
}

}  // namespace

std::vector<std::uint8_t> encode_submit_program(const SubmitProgramRequest& m) {
  Encoder e;
  encode_program(e, m.program);
  encode_ddg(e, m.graph);
  e.u8(static_cast<std::uint8_t>(m.copts.slots));
  e.u8(static_cast<std::uint8_t>(m.copts.opt));
  return e.take();
}

SubmitProgramRequest decode_submit_program(
    const std::vector<std::uint8_t>& payload) {
  Decoder d(payload);
  SubmitProgramRequest m;
  m.program = decode_program(d);
  m.graph = decode_ddg(d);
  const std::uint8_t slots = d.u8();
  if (slots > static_cast<std::uint8_t>(SlotPolicy::Ssa)) {
    throw WireError("invalid slot policy");
  }
  m.copts.slots = static_cast<SlotPolicy>(slots);
  const std::uint8_t opt = d.u8();
  if (opt > static_cast<std::uint8_t>(OptLevel::O1)) {
    throw WireError("invalid opt level");
  }
  m.copts.opt = static_cast<OptLevel>(opt);
  d.expect_done();
  return m;
}

std::vector<std::uint8_t> encode_submit_program_reply(
    const SubmitProgramReply& m) {
  Encoder e;
  e.u64(m.program_id);
  e.u32(m.threads);
  e.u32(m.channels);
  e.u32(m.slots);
  e.i64(m.iterations);
  return e.take();
}

SubmitProgramReply decode_submit_program_reply(
    const std::vector<std::uint8_t>& payload) {
  Decoder d(payload);
  SubmitProgramReply m;
  m.program_id = d.u64();
  m.threads = d.u32();
  m.channels = d.u32();
  m.slots = d.u32();
  m.iterations = d.i64();
  d.expect_done();
  return m;
}

std::vector<std::uint8_t> encode_run(const RunRequest& m) {
  Encoder e;
  encode_run_request(e, m);
  return e.take();
}

RunRequest decode_run(const std::vector<std::uint8_t>& payload) {
  Decoder d(payload);
  RunRequest m = decode_run_request(d);
  d.expect_done();
  return m;
}

std::vector<std::uint8_t> encode_run_reply(const ExecutionResult& m) {
  Encoder e;
  encode_result(e, m);
  return e.take();
}

ExecutionResult decode_run_reply(const std::vector<std::uint8_t>& payload) {
  Decoder d(payload);
  ExecutionResult r = decode_result(d);
  d.expect_done();
  return r;
}

std::vector<std::uint8_t> encode_run_batch(const RunBatchRequest& m) {
  Encoder e;
  e.u32(static_cast<std::uint32_t>(m.items.size()));
  for (const RunRequest& it : m.items) encode_run_request(e, it);
  e.u32(m.concurrency);
  return e.take();
}

RunBatchRequest decode_run_batch(const std::vector<std::uint8_t>& payload) {
  Decoder d(payload);
  RunBatchRequest m;
  const std::uint32_t n = d.count(22);  // 8 + 8 + 6 per item
  m.items.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.items.push_back(decode_run_request(d));
  m.concurrency = d.u32();
  d.expect_done();
  return m;
}

std::vector<std::uint8_t> encode_run_batch_reply(const RunBatchReply& m) {
  Encoder e;
  e.u32(static_cast<std::uint32_t>(m.results.size()));
  for (const ExecutionResult& r : m.results) encode_result(e, r);
  e.f64(m.wall_seconds);
  return e.take();
}

RunBatchReply decode_run_batch_reply(const std::vector<std::uint8_t>& payload) {
  Decoder d(payload);
  RunBatchReply m;
  const std::uint32_t n = d.count(12);
  m.results.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) m.results.push_back(decode_result(d));
  m.wall_seconds = d.f64();
  d.expect_done();
  return m;
}

std::vector<std::uint8_t> encode_stats_reply(const StatsReply& m) {
  Encoder e;
  e.u64(m.cache.hits);
  e.u64(m.cache.misses);
  e.u64(m.cache.evictions);
  e.u64(m.cache.entries);
  e.u64(m.cache.capacity);
  e.u64(m.pool_workers);
  e.u64(m.pool_gangs);
  e.u64(m.connections_accepted);
  e.u64(m.connections_active);
  e.u64(m.programs_registered);
  e.u64(m.runs_executed);
  e.u64(m.frame_quota_trips);
  e.u64(m.registry_quota_trips);
  e.u64(m.quota_disconnects);
  e.u64(m.accept_backoffs);
  e.u64(m.jit_enabled);
  e.u64(m.jit_compiles);
  e.u64(m.jit_failures);
  e.u64(m.jit_in_flight);
  e.u64(m.jit_native_runs);
  e.u64(m.jit_interpreted_runs);
  e.u64(m.jit_pooled_runs);
  e.u64(m.jit_ineligible_runs);
  return e.take();
}

StatsReply decode_stats_reply(const std::vector<std::uint8_t>& payload) {
  Decoder d(payload);
  StatsReply m;
  m.cache.hits = d.u64();
  m.cache.misses = d.u64();
  m.cache.evictions = d.u64();
  m.cache.entries = static_cast<std::size_t>(d.u64());
  m.cache.capacity = static_cast<std::size_t>(d.u64());
  m.pool_workers = d.u64();
  m.pool_gangs = d.u64();
  m.connections_accepted = d.u64();
  m.connections_active = d.u64();
  m.programs_registered = d.u64();
  m.runs_executed = d.u64();
  m.frame_quota_trips = d.u64();
  m.registry_quota_trips = d.u64();
  m.quota_disconnects = d.u64();
  m.accept_backoffs = d.u64();
  m.jit_enabled = d.u64();
  m.jit_compiles = d.u64();
  m.jit_failures = d.u64();
  m.jit_in_flight = d.u64();
  m.jit_native_runs = d.u64();
  m.jit_interpreted_runs = d.u64();
  m.jit_pooled_runs = d.u64();
  m.jit_ineligible_runs = d.u64();
  d.expect_done();
  return m;
}

std::vector<std::uint8_t> encode_error(const std::string& message) {
  Encoder e;
  e.str(message);
  return e.take();
}

std::string decode_error(const std::vector<std::uint8_t>& payload) {
  Decoder d(payload);
  std::string s = d.str();
  d.expect_done();
  return s;
}

std::vector<std::uint8_t> encode_hello(const HelloRequest& m) {
  Encoder e;
  e.u32(m.min_version);
  e.u32(m.max_version);
  return e.take();
}

HelloRequest decode_hello(const std::vector<std::uint8_t>& payload) {
  Decoder d(payload);
  HelloRequest m;
  m.min_version = d.u32();
  m.max_version = d.u32();
  if (m.min_version == 0 || m.min_version > m.max_version) {
    throw WireError("invalid hello version range");
  }
  d.expect_done();
  return m;
}

std::vector<std::uint8_t> encode_hello_reply(std::uint32_t version) {
  Encoder e;
  e.u32(version);
  return e.take();
}

std::uint32_t decode_hello_reply(const std::vector<std::uint8_t>& payload) {
  Decoder d(payload);
  const std::uint32_t version = d.u32();
  if (version == 0) throw WireError("invalid hello reply version");
  d.expect_done();
  return version;
}

std::vector<std::uint8_t> encode_drop_program(std::uint64_t program_id) {
  Encoder e;
  e.u64(program_id);
  return e.take();
}

std::uint64_t decode_drop_program(const std::vector<std::uint8_t>& payload) {
  Decoder d(payload);
  const std::uint64_t id = d.u64();
  d.expect_done();
  return id;
}

std::vector<std::uint8_t> encode_drop_program_reply(std::uint64_t program_id) {
  return encode_drop_program(program_id);
}

std::uint64_t decode_drop_program_reply(
    const std::vector<std::uint8_t>& payload) {
  return decode_drop_program(payload);
}

// ---------------------------------------------------------------------------
// Endpoints

namespace {

/// "host:port" -> Endpoint, validating the numeric port.  `allow_zero`
/// distinguishes the listen side (0 = ephemeral) from the connect side.
Endpoint parse_tcp_spec(const std::string& hp) {
  const std::size_t colon = hp.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == hp.size()) {
    throw WireError("TCP endpoint must be host:port: '" + hp + "'");
  }
  const std::string port_str = hp.substr(colon + 1);
  if (!std::all_of(port_str.begin(), port_str.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      })) {
    throw WireError("TCP port must be numeric: '" + hp + "'");
  }
  const unsigned long port = std::stoul(port_str);
  if (port > 65535) throw WireError("TCP port out of range: '" + hp + "'");
  Endpoint ep;
  ep.kind = Endpoint::Kind::Tcp;
  ep.host = hp.substr(0, colon);
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

/// True when a bare spec reads as host:port — numeric suffix after the
/// last ':' and no '/' anywhere (a filesystem path wins on ambiguity).
bool looks_like_tcp(const std::string& spec) {
  if (spec.find('/') != std::string::npos) return false;
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return false;
  }
  const std::string port = spec.substr(colon + 1);
  return std::all_of(port.begin(), port.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  if (spec.empty()) throw WireError("empty endpoint");
  if (spec.rfind("tcp:", 0) == 0) return parse_tcp_spec(spec.substr(4));
  if (spec.rfind("unix:", 0) == 0) {
    Endpoint ep;
    ep.path = spec.substr(5);
    if (ep.path.empty()) throw WireError("empty unix endpoint path");
    return ep;
  }
  if (looks_like_tcp(spec)) return parse_tcp_spec(spec);
  Endpoint ep;
  ep.path = spec;
  return ep;
}

std::string endpoint_to_string(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::Tcp) {
    return ep.host + ":" + std::to_string(ep.port);
  }
  return ep.path;
}

int connect_endpoint(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::Unix) {
    const sockaddr_un addr = make_unix_addr(ep.path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw WireError(std::string("socket() failed: ") + std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd);
      throw WireError("connect(" + ep.path + ") failed: " + std::strerror(err));
    }
    return fd;
  }

  if (ep.port == 0) {
    throw WireError("cannot connect to port 0: '" + endpoint_to_string(ep) +
                    "'");
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(ep.host.c_str(),
                               std::to_string(ep.port).c_str(), &hints, &res);
  if (rc != 0) {
    throw WireError("cannot resolve " + endpoint_to_string(ep) + ": " +
                    ::gai_strerror(rc));
  }
  int fd = -1;
  int last_err = ECONNREFUSED;
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_err = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_err = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    throw WireError("connect(" + endpoint_to_string(ep) +
                    ") failed: " + std::strerror(last_err));
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

std::pair<int, std::uint16_t> listen_tcp(const std::string& host,
                                         std::uint16_t port, int backlog) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    throw WireError("cannot resolve " + host + ":" + std::to_string(port) +
                    ": " + ::gai_strerror(rc));
  }
  int fd = -1;
  int last_err = EADDRNOTAVAIL;
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_err = errno;
      continue;
    }
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0) {
      break;
    }
    last_err = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    throw WireError("listen(" + host + ":" + std::to_string(port) +
                    ") failed: " + std::strerror(last_err));
  }
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  std::uint16_t actual = port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    if (bound.ss_family == AF_INET) {
      actual = ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
    } else if (bound.ss_family == AF_INET6) {
      actual = ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
    }
  }
  return {fd, actual};
}

// ---------------------------------------------------------------------------
// Framed I/O

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw WireError("socket path empty or too long: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

namespace {

void send_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("send failed: ") + std::strerror(errno));
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Read exactly n bytes.  Returns false on EOF before the first byte;
/// throws on EOF mid-buffer or any error (EAGAIN/EWOULDBLOCK = SO_RCVTIMEO
/// expiry reads as a timeout).
bool recv_all(int fd, std::uint8_t* data, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, data + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw WireError("receive timed out");
      }
      throw WireError(std::string("recv failed: ") + std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0) return false;
      throw WireError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

void write_frame(int fd, FrameType type,
                 const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFramePayload) throw WireError("frame too large");
  std::uint8_t header[5];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<std::uint8_t>(len);
  header[1] = static_cast<std::uint8_t>(len >> 8);
  header[2] = static_cast<std::uint8_t>(len >> 16);
  header[3] = static_cast<std::uint8_t>(len >> 24);
  header[4] = static_cast<std::uint8_t>(type);
  send_all(fd, header, sizeof(header));
  if (!payload.empty()) send_all(fd, payload.data(), payload.size());
}

std::optional<Frame> read_frame(int fd) {
  std::uint8_t header[5];
  if (!recv_all(fd, header, sizeof(header))) return std::nullopt;
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            static_cast<std::uint32_t>(header[1]) << 8 |
                            static_cast<std::uint32_t>(header[2]) << 16 |
                            static_cast<std::uint32_t>(header[3]) << 24;
  if (len > kMaxFramePayload) throw WireError("frame length exceeds limit");
  Frame f;
  f.type = static_cast<FrameType>(header[4]);
  f.payload.resize(len);
  if (len > 0 && !recv_all(fd, f.payload.data(), len)) {
    throw WireError("connection closed mid-frame");
  }
  return f;
}

namespace {

/// Little-endian header assembly shared by the fd writers and the
/// write-queue encoder — one place defines the byte layout per version.
void put_header(std::uint8_t* out, std::uint32_t version, FrameType type,
                std::uint64_t request_id, std::uint32_t len) {
  out[0] = static_cast<std::uint8_t>(len);
  out[1] = static_cast<std::uint8_t>(len >> 8);
  out[2] = static_cast<std::uint8_t>(len >> 16);
  out[3] = static_cast<std::uint8_t>(len >> 24);
  out[4] = static_cast<std::uint8_t>(type);
  if (version >= kProtocolV2) {
    for (int i = 0; i < 8; ++i) {
      out[5 + i] = static_cast<std::uint8_t>(request_id >> (8 * i));
    }
  }
}

}  // namespace

void write_frame_v2(int fd, FrameType type, std::uint64_t request_id,
                    const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFramePayload) throw WireError("frame too large");
  std::uint8_t header[kHeaderBytesV2];
  put_header(header, kProtocolV2, type, request_id,
             static_cast<std::uint32_t>(payload.size()));
  send_all(fd, header, sizeof(header));
  if (!payload.empty()) send_all(fd, payload.data(), payload.size());
}

std::optional<FrameV2> read_frame_v2(int fd) {
  std::uint8_t header[kHeaderBytesV2];
  if (!recv_all(fd, header, sizeof(header))) return std::nullopt;
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            static_cast<std::uint32_t>(header[1]) << 8 |
                            static_cast<std::uint32_t>(header[2]) << 16 |
                            static_cast<std::uint32_t>(header[3]) << 24;
  if (len > kMaxFramePayload) throw WireError("frame length exceeds limit");
  FrameV2 f;
  f.type = static_cast<FrameType>(header[4]);
  for (int i = 0; i < 8; ++i) {
    f.request_id |= static_cast<std::uint64_t>(header[5 + i]) << (8 * i);
  }
  f.payload.resize(len);
  if (len > 0 && !recv_all(fd, f.payload.data(), len)) {
    throw WireError("connection closed mid-frame");
  }
  return f;
}

std::vector<std::uint8_t> encode_frame_bytes(
    std::uint32_t version, FrameType type, std::uint64_t request_id,
    const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxFramePayload) throw WireError("frame too large");
  const std::size_t header_bytes =
      version >= kProtocolV2 ? kHeaderBytesV2 : kHeaderBytesV1;
  std::vector<std::uint8_t> out(header_bytes + payload.size());
  put_header(out.data(), version, type, request_id,
             static_cast<std::uint32_t>(payload.size()));
  std::copy(payload.begin(), payload.end(), out.begin() + header_bytes);
  return out;
}

void FrameBuffer::append(const std::uint8_t* data, std::size_t n) {
  // Compact the consumed prefix before it dominates the buffer — keeps
  // the buffer proportional to the unparsed remainder, not to the
  // connection's lifetime traffic.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<FrameV2> FrameBuffer::next() {
  const std::size_t header_bytes =
      version_ >= kProtocolV2 ? kHeaderBytesV2 : kHeaderBytesV1;
  if (buffered() < header_bytes) return std::nullopt;
  const std::uint8_t* h = buf_.data() + pos_;
  const std::uint32_t len = static_cast<std::uint32_t>(h[0]) |
                            static_cast<std::uint32_t>(h[1]) << 8 |
                            static_cast<std::uint32_t>(h[2]) << 16 |
                            static_cast<std::uint32_t>(h[3]) << 24;
  if (len > kMaxFramePayload) throw WireError("frame length exceeds limit");
  if (buffered() < header_bytes + len) return std::nullopt;
  FrameV2 f;
  f.type = static_cast<FrameType>(h[4]);
  if (version_ >= kProtocolV2) {
    for (int i = 0; i < 8; ++i) {
      f.request_id |= static_cast<std::uint64_t>(h[5 + i]) << (8 * i);
    }
  }
  f.payload.assign(h + header_bytes, h + header_bytes + len);
  pos_ += header_bytes + len;
  return f;
}

}  // namespace mimd::wire
