#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "support/assert.hpp"

namespace mimd {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MIMD_EXPECTS(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  MIMD_EXPECTS(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::add_rule() { rows_.emplace_back(); }

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto print_rule = [&] {
    out << '+';
    for (std::size_t c = 0; c < width.size(); ++c) {
      out << std::string(width[c] + 2, '-') << '+';
    }
    out << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    out << '|';
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      out << ' ' << cell << std::string(width[c] - cell.size() + 1, ' ') << '|';
    }
    out << '\n';
  };

  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_rule();
    } else {
      print_row(row);
    }
  }
  print_rule();
  return out.str();
}

std::string fmt_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace mimd
