// Patterns — the repeating steady state of the greedy schedule.
//
// Theorem 1 of the paper: the schedule produced by Cyclic-sched contains a
// repeating pattern.  A pattern is a set of placements (the "kernel") that,
// shifted by `period_cycles` cycles and `period_iters` iterations, tiles the
// rest of the infinite schedule: processor assignments repeat verbatim
// (processor indices do NOT shift — each processor repeats its own
// sub-pattern, as in Figure 7(d)).
//
// Two detectors are provided:
//  * the exact scheduler-state-signature detector lives inside Cyclic-sched
//    (schedule/cyclic_sched.hpp) — it fires the moment the scheduler state
//    repeats, which is a bisimulation argument and therefore sound;
//  * `detect_pattern_window` below is the paper's own Section-2.3 device — a
//    sliding P x (k+1) "configuration" window compared modulo iteration
//    shift — implemented offline over a finished schedule, and verified by
//    re-checking that the candidate kernel actually tiles the tail.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "graph/ddg.hpp"
#include "schedule/schedule.hpp"

namespace mimd {

struct Pattern {
  /// Placements scheduled strictly before the kernel (the warm-up ramp).
  std::vector<Placement> prologue;
  /// The repeating kernel. Shift t by period_cycles and iter by
  /// period_iters to obtain each subsequent repetition.
  std::vector<Placement> kernel;
  std::int64_t period_iters = 0;   ///< iterations per repetition (Delta i)
  std::int64_t period_cycles = 0;  ///< cycles per repetition (Delta t)
  /// Iteration index at which the kernel's first repetition begins: the
  /// kernel covers iterations [first_iter, first_iter + period_iters) —
  /// possibly referencing a few instances outside that band that were
  /// scheduled out of band (none for connected Cyclic graphs).
  std::int64_t first_iter = 0;

  /// Asymptotic initiation interval: cycles per source iteration.
  [[nodiscard]] double initiation_interval() const {
    MIMD_EXPECTS(period_iters > 0);
    return static_cast<double>(period_cycles) /
           static_cast<double>(period_iters);
  }

  /// Height of the pattern in cycles (the paper's H, used to size the
  /// Flow-in/Flow-out processor pool): cycles per repetition.
  [[nodiscard]] std::int64_t height() const { return period_cycles; }
};

/// Expand a pattern into a concrete schedule for iterations [0, n):
/// prologue placements plus shifted kernel repetitions, dropping instances
/// with iteration >= n.  The result is exactly what the greedy scheduler
/// would have produced (prefix property), so it satisfies all dependences.
Schedule materialize(const Pattern& pat, int processors, std::int64_t n);

/// The paper's configuration-window detector, run offline over a schedule
/// that extends far enough (e.g. produced with CyclicSched in
/// run-to-horizon mode).  `window_height` is k+1.  Returns nullopt when no
/// verified repeat exists within the schedule.
std::optional<Pattern> detect_pattern_window(const Schedule& sched,
                                             const Ddg& g,
                                             int window_height);

/// Render the kernel in paper style (box excerpt).
std::string render_kernel(const Pattern& pat, const Ddg& g, int processors);

}  // namespace mimd
