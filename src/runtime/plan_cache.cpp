#include "runtime/plan_cache.hpp"

#include <utility>

#include "support/assert.hpp"

namespace mimd {

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool PlanCache::matches_locked(const Entry& e, const PartitionedProgram& prog,
                               const CompileOptions& copts) const {
  return e.key_copts == copts && e.key_prog == prog;
}

void PlanCache::evict_to_capacity_locked() {
  // Building entries are pinned (their builders hold iterators); walk from
  // the cold end and drop the least recently used *built* entries.
  auto it = lru_.end();
  std::size_t built_over = lru_.size() > capacity_ ? lru_.size() - capacity_
                                                   : 0;
  while (built_over > 0 && it != lru_.begin()) {
    --it;
    if (it->plan == nullptr) continue;  // in flight: pinned
    by_hash_.erase(it->hash);
    it = lru_.erase(it);
    ++evictions_;
    --built_over;
  }
}

std::shared_ptr<const ExecutorPlan> PlanCache::get_or_compile(
    const PartitionedProgram& prog, const Ddg& g,
    const CompileOptions& copts) {
  // Hash the graph once; the combined key folds the precomputed value.
  const std::uint64_t graph_hash = structural_hash(g);
  const std::uint64_t hash = structural_hash(prog, graph_hash, copts);

  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto it = by_hash_.find(hash);
    if (it == by_hash_.end()) break;  // miss: compile below
    Entry& e = *it->second;
    if (e.plan == nullptr) {
      // Someone is compiling under this hash (almost surely this exact
      // structure): wait for the publish — or for a failed build to
      // retract the entry — then rescan.  The full-equality check below
      // needs the built plan's graph anyway.
      built_.wait(lock);
      continue;
    }
    if (!matches_locked(e, prog, copts) || e.key_graph_hash != graph_hash ||
        !structurally_equivalent(g, e.plan->graph())) {
      // True 64-bit collision: two structures, one hash.  Never serve the
      // wrong plan — program and options compare by full equality, the
      // graph against the plan's own copy (the stored graph hash is just
      // the cheap pre-filter).  Replace the resident entry.
      const auto stale = it->second;
      by_hash_.erase(it);
      lru_.erase(stale);
      ++evictions_;
      break;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // touch: most recent
    return e.plan;
  }

  ++misses_;
  lru_.push_front(Entry{hash, prog, copts, graph_hash, nullptr});
  const auto self = lru_.begin();
  by_hash_[hash] = self;
  lock.unlock();

  std::shared_ptr<const ExecutorPlan> plan;
  try {
    plan = std::make_shared<const ExecutorPlan>(compile(prog, g, copts));
  } catch (...) {
    lock.lock();
    by_hash_.erase(hash);
    lru_.erase(self);
    built_.notify_all();
    throw;
  }

  lock.lock();
  self->plan = plan;
  evict_to_capacity_locked();
  built_.notify_all();
  return plan;
}

PlanCache::Stats PlanCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

void PlanCache::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->plan == nullptr) {
      ++it;  // in flight: its builder will publish into a live entry
    } else {
      by_hash_.erase(it->hash);
      it = lru_.erase(it);
    }
  }
}

}  // namespace mimd
