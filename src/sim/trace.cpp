#include "sim/trace.hpp"

#include <map>
#include <sstream>

namespace mimd {

std::optional<TraceEvent> Trace::find_compute(const Inst& inst) const {
  for (const TraceEvent& e : events) {
    if (e.kind == Op::Kind::Compute && e.inst == inst) return e;
  }
  return std::nullopt;
}

std::optional<std::string> find_trace_violation(const Trace& t, const Ddg& g,
                                                int min_comm) {
  std::map<std::pair<NodeId, std::int64_t>, TraceEvent> computes;
  // (edge, producing inst) -> delivery time at the consumer
  std::map<std::tuple<EdgeId, NodeId, std::int64_t>, std::int64_t> delivered;
  for (const TraceEvent& e : t.events) {
    if (e.kind == Op::Kind::Compute) {
      computes[{e.inst.node, e.inst.iter}] = e;
    } else if (e.kind == Op::Kind::Receive) {
      delivered[{e.edge, e.inst.node, e.inst.iter}] = e.finish;
    }
  }

  for (const TraceEvent& e : t.events) {
    if (e.kind != Op::Kind::Compute) continue;
    for (const EdgeId eid : g.in_edges(e.inst.node)) {
      const Edge& edge = g.edge(eid);
      const std::int64_t src_iter = e.inst.iter - edge.distance;
      if (src_iter < 0) continue;
      const auto src = computes.find({edge.src, src_iter});
      if (src == computes.end()) {
        std::ostringstream msg;
        msg << "operand " << g.node(edge.src).name << "@" << src_iter
            << " of " << g.node(e.inst.node).name << "@" << e.inst.iter
            << " never computed";
        return msg.str();
      }
      std::int64_t ready = src->second.finish;
      if (src->second.proc != e.proc) {
        const auto d = delivered.find({eid, edge.src, src_iter});
        if (d == delivered.end()) {
          std::ostringstream msg;
          msg << "cross-processor operand " << g.node(edge.src).name << "@"
              << src_iter << " never received on PE" << e.proc;
          return msg.str();
        }
        if (d->second < src->second.finish + min_comm) {
          return "message delivered faster than the minimum communication cost";
        }
        ready = d->second;
      }
      if (e.start < ready) {
        std::ostringstream msg;
        msg << g.node(e.inst.node).name << "@" << e.inst.iter
            << " started at " << e.start << " before operand ready at "
            << ready;
        return msg.str();
      }
    }
  }
  return std::nullopt;
}

std::string render_trace(const Trace& t, const Ddg& g, std::size_t max_events) {
  std::ostringstream out;
  std::size_t shown = 0;
  for (const TraceEvent& e : t.events) {
    if (shown++ >= max_events) {
      out << "... (" << t.events.size() - max_events << " more events)\n";
      break;
    }
    out << "[" << e.start << "," << e.finish << ") PE" << e.proc << " ";
    switch (e.kind) {
      case Op::Kind::Compute:
        out << "compute ";
        break;
      case Op::Kind::Send:
        out << "send ";
        break;
      case Op::Kind::Receive:
        out << "recv ";
        break;
    }
    out << g.node(e.inst.node).name << "@" << e.inst.iter << "\n";
  }
  return out.str();
}

}  // namespace mimd
