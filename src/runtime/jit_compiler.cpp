#include "runtime/jit_compiler.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "partition/c_codegen.hpp"
#include "runtime/worker_pool.hpp"
#include "support/assert.hpp"

// Compile-time kill switches.  MIMD_JIT_DISABLED comes from CMake
// (-DMIMD_ENABLE_JIT=OFF, or dlfcn.h absent at configure time); the TSan
// detection is automatic because a dlopen'd kernel is uninstrumented —
// its pthreads and channel handoffs would be invisible to the race
// detector and every cross-thread value a false positive.  ASan/UBSan
// tolerate an uninstrumented plain-C library in an instrumented process,
// so those builds keep the JIT on.
#if defined(MIMD_JIT_DISABLED)
#define MIMD_JIT_DISABLED_REASON \
  "JIT disabled at build time (MIMD_ENABLE_JIT=OFF)"
#elif defined(__SANITIZE_THREAD__)
#define MIMD_JIT_DISABLED_REASON \
  "JIT disabled under ThreadSanitizer (dlopen'd kernels are uninstrumented)"
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MIMD_JIT_DISABLED_REASON \
  "JIT disabled under ThreadSanitizer (dlopen'd kernels are uninstrumented)"
#endif
#endif

#ifndef MIMD_JIT_DISABLED_REASON
#include <dlfcn.h>
#include <unistd.h>
#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif
#endif

namespace mimd {

namespace {

#ifndef MIMD_JIT_DISABLED_REASON

std::string scratch_root(const JitOptions& opts) {
  if (!opts.scratch_dir.empty()) return opts.scratch_dir;
  if (const char* t = std::getenv("TMPDIR"); t != nullptr && *t != '\0') {
    return t;
  }
  return "/tmp";
}

/// A fresh scratch-path stem, unique within and across processes.
std::string scratch_stem(const JitOptions& opts) {
  static std::atomic<std::uint64_t> counter{0};
  std::ostringstream s;
  s << scratch_root(opts) << "/mimd-jit-" << ::getpid() << "-"
    << counter.fetch_add(1);
  return s.str();
}

struct ScratchFiles {
  std::string c, so, err;
  ~ScratchFiles() {
    // Best-effort cleanup; on Linux the .so stays mapped after unlink.
    if (!c.empty()) std::remove(c.c_str());
    if (!so.empty()) std::remove(so.c_str());
    if (!err.empty()) std::remove(err.c_str());
  }
};

std::string read_excerpt(const std::string& path, std::size_t max_bytes) {
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (text.size() > max_bytes) {
    text.resize(max_bytes);
    text += "...";
  }
  return text;
}

/// cc -O2 -std=c11 -shared -fPIC -pthread <extra> -o so c 2> err.
/// Returns the system() status; nonzero means "read err".
int run_toolchain(const JitOptions& opts, const ScratchFiles& f) {
  std::ostringstream cmd;
  cmd << opts.cc << " -O2 -std=c11 -shared -fPIC -pthread";
  if (!opts.extra_flags.empty()) cmd << ' ' << opts.extra_flags;
  cmd << " -o " << f.so << ' ' << f.c << " 2> " << f.err;
  return std::system(cmd.str().c_str());  // NOLINT(cert-env33-c)
}

struct ProbeResult {
  bool ok = false;
  std::string reason;
};

/// Compile + load + call a trivial kernel once per (cc, extra_flags)
/// pair, process-wide.  Many PlanCaches (test suites construct dozens)
/// share one probe; the map is tiny and never shrinks.
const ProbeResult& probe_toolchain(const JitOptions& opts) {
  static std::mutex mu;
  static std::map<std::string, ProbeResult> cache;
  const std::string key = opts.cc + "\x1f" + opts.extra_flags;

  const std::lock_guard<std::mutex> lock(mu);
  const auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  ProbeResult r;
  ScratchFiles f;
  const std::string stem = scratch_stem(opts);
  f.c = stem + ".c";
  f.so = stem + ".so";
  f.err = stem + ".err";
  {
    std::ofstream out(f.c);
    out << "int mimd_jit_probe(void) { return 42; }\n";
    if (!out) {
      r.reason = "no working C toolchain: cannot write scratch file " + f.c;
      return cache.emplace(key, std::move(r)).first->second;
    }
  }
  if (run_toolchain(opts, f) != 0) {
    r.reason = "no working C toolchain: '" + opts.cc +
               " -shared' failed: " + read_excerpt(f.err, 300);
    return cache.emplace(key, std::move(r)).first->second;
  }
  void* handle = ::dlopen(f.so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    r.reason = std::string("no working C toolchain: dlopen failed: ") +
               ::dlerror();
    return cache.emplace(key, std::move(r)).first->second;
  }
  using ProbeFn = int (*)(void);
  auto probe =
      reinterpret_cast<ProbeFn>(::dlsym(handle, "mimd_jit_probe"));
  if (probe == nullptr || probe() != 42) {
    r.reason = "no working C toolchain: probe symbol missing or wrong";
    ::dlclose(handle);
    return cache.emplace(key, std::move(r)).first->second;
  }
  ::dlclose(handle);
  r.ok = true;
  return cache.emplace(key, std::move(r)).first->second;
}

#endif  // !MIMD_JIT_DISABLED_REASON

}  // namespace

bool jit_run_eligible(const RunOptions& opts) {
  return opts.transport == Transport::Spsc &&
         opts.kernel.work_per_cycle == 0 && opts.channel_capacity == 0;
}

bool jit_run_eligible(const RunOptions& opts, const JitKernel& kernel) {
  return jit_run_eligible(opts) &&
         (!opts.pin_threads || kernel.supports_pool());
}

#ifdef MIMD_JIT_DISABLED_REASON

bool jit_available(const JitOptions&) { return false; }

std::string jit_unavailable_reason(const JitOptions&) {
  return MIMD_JIT_DISABLED_REASON;
}

JitKernel::~JitKernel() = default;

ExecutionResult JitKernel::run(std::int64_t) const {
  throw JitError(MIMD_JIT_DISABLED_REASON);
}

ExecutionResult JitKernel::run_pooled(std::int64_t, WorkerPool*,
                                      bool) const {
  throw JitError(MIMD_JIT_DISABLED_REASON);
}

std::shared_ptr<const JitKernel> jit_compile(const ExecutorPlan&,
                                             const JitOptions&) {
  throw JitError(MIMD_JIT_DISABLED_REASON);
}

#else  // JIT enabled

bool jit_available(const JitOptions& opts) {
  return probe_toolchain(opts).ok;
}

std::string jit_unavailable_reason(const JitOptions& opts) {
  return probe_toolchain(opts).reason;
}

JitKernel::~JitKernel() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

namespace {

/// The library-default pre-loop values, node-indexed — what both entry
/// styles hand the kernel as its `init` vector.
std::vector<double> kernel_init_vector(std::int64_t nodes) {
  std::vector<double> init(static_cast<std::size_t>(nodes));
  for (std::size_t v = 0; v < init.size(); ++v) {
    init[v] = initial_value(static_cast<NodeId>(v));
  }
  return init;
}

/// Unpack the kernel's row-major flat matrix into per-node rows.
ExecutionResult unpack_flat(const std::vector<double>& flat,
                            std::int64_t nodes, std::int64_t n) {
  ExecutionResult res;
  res.values.resize(static_cast<std::size_t>(nodes));
  for (std::size_t v = 0; v < res.values.size(); ++v) {
    const auto row =
        flat.begin() +
        static_cast<std::ptrdiff_t>(v * static_cast<std::size_t>(n));
    res.values[v].assign(row, row + static_cast<std::ptrdiff_t>(n));
  }
  return res;
}

}  // namespace

ExecutionResult JitKernel::run(std::int64_t n) const {
  MIMD_EXPECTS(n >= iterations_);
  const std::vector<double> init = kernel_init_vector(nodes_);
  // Zero-filled flat matrix: entries no processor computes stay 0.0,
  // matching the interpreted executor's zero-resized rows bit for bit.
  std::vector<double> flat(static_cast<std::size_t>(nodes_) *
                           static_cast<std::size_t>(n));
  const auto t0 = std::chrono::steady_clock::now();
  const int rc = entry_(n, init.data(), flat.data());
  const auto t1 = std::chrono::steady_clock::now();
  if (rc != 0) {
    throw JitError("native kernel rejected the run (rc=" +
                   std::to_string(rc) + ")");
  }
  ExecutionResult res = unpack_flat(flat, nodes_, n);
  res.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return res;
}

ExecutionResult JitKernel::run_pooled(std::int64_t n, WorkerPool* pool,
                                      bool pin_threads) const {
  MIMD_EXPECTS(supports_pool());
  MIMD_EXPECTS(n >= iterations_);
  const std::vector<double> init = kernel_init_vector(nodes_);
  std::vector<double> flat(static_cast<std::size_t>(nodes_) *
                           static_cast<std::size_t>(n));
  void* ctx = ctx_create_(n, init.data(), flat.data());
  if (ctx == nullptr) {
    throw JitError("native kernel rejected ctx_create");
  }
  // One gang, one task per compiled thread, placed exactly like an
  // interpreted run: pool workers when available, rotating pinned CPU
  // slices when requested.  Tasks must not throw on pool threads, so
  // per-thread failures are collected and raised after the join.
  std::atomic<int> bad{0};
  const auto t0 = std::chrono::steady_clock::now();
  run_indexed_gang(pool, static_cast<std::size_t>(threads_), pin_threads,
                   [&](std::size_t i) {
                     if (run_on_(ctx, static_cast<long long>(i)) != 0) {
                       bad.fetch_add(1, std::memory_order_relaxed);
                     }
                   });
  const auto t1 = std::chrono::steady_clock::now();
  ctx_destroy_(ctx);
  if (bad.load(std::memory_order_relaxed) != 0) {
    throw JitError("native kernel rejected a run_on thread entry");
  }
  ExecutionResult res = unpack_flat(flat, nodes_, n);
  res.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return res;
}

std::shared_ptr<const JitKernel> jit_compile(const ExecutorPlan& plan,
                                             const JitOptions& opts) {
  const ProbeResult& probe = probe_toolchain(opts);
  if (!probe.ok) throw JitError(probe.reason);

  CEmitOptions eopts;
  eopts.shared_object = true;
  eopts.self_check = false;
  eopts.transport = Transport::Spsc;  // the only jit_run_eligible transport
  eopts.kernel_abi = opts.emit_abi;
  const std::string source = emit_c_program(plan.program(), plan.graph(),
                                            eopts);

  ScratchFiles f;
  const std::string stem = scratch_stem(opts);
  f.c = stem + ".c";
  f.so = stem + ".so";
  f.err = stem + ".err";
  {
    std::ofstream out(f.c);
    out << source;
    if (!out) throw JitError("cannot write scratch file " + f.c);
  }
  if (run_toolchain(opts, f) != 0) {
    throw JitError("kernel compile failed: " + read_excerpt(f.err, 500));
  }

  void* handle = ::dlopen(f.so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    throw JitError(std::string("dlopen failed: ") + ::dlerror());
  }
  // ScratchFiles unlinks the .so on scope exit; the mapping survives the
  // unlink, so from here the kernel's lifetime is purely the handle's.
  auto entry = reinterpret_cast<JitKernel::EntryFn>(
      ::dlsym(handle, "mimd_kernel_run"));
  struct KernelInfo {
    long long abi_version, nodes, iterations, threads;
  };
  const auto* info =
      static_cast<const KernelInfo*>(::dlsym(handle, "mimd_kernel_info"));
  // Both ABI generations load: v1 is run-only (the kernel spawns its own
  // pthreads), v2 additionally carries the pooled entry style.  Anything
  // else — or a node/iteration mismatch — is a load failure, never a
  // misread buffer.
  if (entry == nullptr || info == nullptr ||
      (info->abi_version != 1 && info->abi_version != 2) ||
      info->nodes !=
          static_cast<long long>(plan.graph().num_nodes()) ||
      info->iterations != plan.program().iterations) {
    ::dlclose(handle);
    throw JitError("loaded kernel failed the ABI handshake");
  }

  auto kernel = std::shared_ptr<JitKernel>(new JitKernel());
  kernel->handle_ = handle;
  kernel->entry_ = entry;
  if (info->abi_version >= 2) {
    kernel->ctx_create_ = reinterpret_cast<JitKernel::CtxCreateFn>(
        ::dlsym(handle, "mimd_kernel_ctx_create"));
    kernel->run_on_ = reinterpret_cast<JitKernel::RunOnFn>(
        ::dlsym(handle, "mimd_kernel_run_on"));
    kernel->ctx_destroy_ = reinterpret_cast<JitKernel::CtxDestroyFn>(
        ::dlsym(handle, "mimd_kernel_ctx_destroy"));
    if (kernel->ctx_create_ == nullptr || kernel->run_on_ == nullptr ||
        kernel->ctx_destroy_ == nullptr) {
      // kernel's destructor dlcloses the handle it already owns.
      throw JitError("ABI v2 kernel is missing a pooled entry symbol");
    }
  }
  kernel->nodes_ = info->nodes;
  kernel->iterations_ = info->iterations;
  kernel->threads_ = info->threads;
  return kernel;
}

#endif  // MIMD_JIT_DISABLED_REASON

std::shared_ptr<const JitKernel> JitSlot::kernel() const {
  if (state_.load(std::memory_order_acquire) != kReady) return nullptr;
  return kernel_;
}

bool JitSlot::in_flight() const {
  const int s = state_.load(std::memory_order_acquire);
  return s == kQueued || s == kCompiling;
}

bool JitSlot::failed() const {
  return state_.load(std::memory_order_acquire) == kFailed;
}

JitEngine::JitEngine(const JitOptions& opts) : opts_(opts) {
  reason_ = jit_unavailable_reason(opts_);
  available_ = reason_.empty();
  if (available_) {
    worker_thread_ = std::thread([this] { worker(); });
  }
}

JitEngine::~JitEngine() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  idle_.notify_all();
  if (worker_thread_.joinable()) worker_thread_.join();
}

void JitEngine::enqueue(std::shared_ptr<JitSlot> slot,
                        std::shared_ptr<const ExecutorPlan> plan) {
  if (!available_ || slot == nullptr || plan == nullptr) return;
  // Claim the slot: only the Empty -> Queued transition enqueues, so a
  // structure requested from N threads at once compiles exactly once.
  int expected = JitSlot::kEmpty;
  if (!slot->state_.compare_exchange_strong(expected, JitSlot::kQueued,
                                            std::memory_order_acq_rel)) {
    return;  // already queued / compiling / published / failed
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!stop_ && queue_.size() < opts_.queue_capacity) {
      queue_.push_back(Job{std::move(slot), std::move(plan)});
      cv_.notify_one();
      return;
    }
    ++dropped_;
  }
  // Queue full (or shutting down): release the claim so a later cache
  // hit can retry.
  slot->state_.store(JitSlot::kEmpty, std::memory_order_release);
}

void JitEngine::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] {
    return stop_ || (queue_.empty() && !busy_);
  });
}

JitEngine::Stats JitEngine::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.compiles = compiles_;
  s.failures = failures_;
  s.in_flight = queue_.size() + (busy_ ? 1 : 0);
  s.dropped = dropped_;
  return s;
}

void JitEngine::worker() {
#ifdef __linux__
  // Compiles yield to serving traffic: SCHED_IDLE runs only when the
  // machine is otherwise idle.  Failure (unsupported kernel, seccomp) is
  // fine — the thread stays at default priority.
  sched_param sp{};
  (void)::pthread_setschedparam(::pthread_self(), SCHED_IDLE, &sp);
#endif
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;  // queued slots stay Queued; their cache dies too
    Job job = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();

    job.slot->state_.store(JitSlot::kCompiling, std::memory_order_release);
    bool ok = false;
    try {
      // Publish-subscribe (McKenney): write the pointer, then
      // release-store Ready.  kernel() acquire-loads before reading.
      job.slot->kernel_ = jit_compile(*job.plan, opts_);
      job.slot->state_.store(JitSlot::kReady, std::memory_order_release);
      ok = true;
    } catch (const JitError&) {
      job.slot->state_.store(JitSlot::kFailed, std::memory_order_release);
    }

    lock.lock();
    busy_ = false;
    ok ? ++compiles_ : ++failures_;
    if (queue_.empty()) idle_.notify_all();
  }
}

}  // namespace mimd
