// The rewrite mid-end (src/opt) under test: per-pass golden rewrites,
// the two-layer bit-exactness contract on 50 fuzzed programs (IR
// evaluator: optimized vs unoptimized observables; runtime: each
// rewritten strand threaded vs sequential, both transports), fission on
// a hand-built two-strand loop, and the cache-key separation the opt
// level must provide.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/parallelizer.hpp"
#include "ir/dependence.hpp"
#include "ir/ifconvert.hpp"
#include "ir/parser.hpp"
#include "opt/dce.hpp"
#include "opt/eval.hpp"
#include "opt/fission.hpp"
#include "opt/fold_constants.hpp"
#include "opt/pipeline.hpp"
#include "opt/strength_reduce.hpp"
#include "runtime/executor.hpp"
#include "runtime/plan_cache.hpp"
#include "support/loop_gen.hpp"

namespace mimd {
namespace {

ir::Loop parsed(const std::string& src) {
  const ir::Loop raw = ir::parse_loop(src);
  return raw.has_control_flow() ? ir::if_convert(raw) : raw;
}

/// Runs one scalar pass once and returns the rewrite count.
int run_pass(opt::Pass& pass, ir::Loop& loop) {
  return pass.run(loop, ir::analyze_dependences(loop));
}

std::string rhs_text(const ir::Loop& loop, std::size_t s) {
  return ir::to_string(*loop.body.at(s).rhs);
}

// ---------------------------------------------------------------------------
// `out` clause surface syntax

TEST(OutClause, ParsesAndRoundTrips) {
  const ir::Loop loop =
      ir::parse_loop("out S, T\nfor i:\n  S[i] = S[i-1] + X[i]\n  T[i] = S[i]\n");
  EXPECT_EQ(loop.outputs, (std::vector<std::string>{"S", "T"}));
  const ir::Loop again = ir::parse_loop(ir::to_string(loop));
  EXPECT_EQ(again.outputs, loop.outputs);
  EXPECT_EQ(ir::to_string(again), ir::to_string(loop));
}

TEST(OutClause, AbsentMeansEmpty) {
  const ir::Loop loop = ir::parse_loop("for i:\n  S[i] = S[i-1]\n");
  EXPECT_TRUE(loop.outputs.empty());
}

TEST(OutClause, SurvivesIfConversion) {
  const ir::Loop raw = ir::parse_loop(
      "out T\nfor i:\n  S[i] = X[i]\n  if S[i] > 1 { T[i] = S[i] }\n");
  EXPECT_EQ(ir::if_convert(raw).outputs, (std::vector<std::string>{"T"}));
}

// ---------------------------------------------------------------------------
// Constant folding + algebraic simplification

TEST(FoldConstants, FoldsConstantSubtrees) {
  ir::Loop loop = parsed("for i:\n  T[i] = (2 + 3) * X[i] + (4 * 2 - 1)\n");
  opt::FoldConstants fold;
  EXPECT_GT(run_pass(fold, loop), 0);
  EXPECT_EQ(rhs_text(loop, 0), "((5 * X[i]) + 7)");
}

TEST(FoldConstants, AppliesExactIdentities) {
  ir::Loop loop = parsed(
      "for i:\n"
      "  A[i] = X[i] * 1\n"
      "  B[i] = X[i] / 1\n"
      "  C[i] = X[i] - 0\n"
      "  D[i] = - - X[i]\n");
  opt::FoldConstants fold;
  EXPECT_EQ(run_pass(fold, loop), 4);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(rhs_text(loop, s), "X[i]");
}

TEST(FoldConstants, RejectsInexactIdentities) {
  // x+0 (x = -0.0), x*0 (NaN/inf/-0) and x-x (NaN/inf) are not exact
  // under IEEE-754 — the pass must leave them alone (docs/PASSES.md has
  // the counterexamples).
  ir::Loop loop = parsed(
      "for i:\n"
      "  A[i] = X[i] + 0\n"
      "  B[i] = X[i] * 0\n"
      "  C[i] = X[i] - X[i]\n");
  opt::FoldConstants fold;
  EXPECT_EQ(run_pass(fold, loop), 0);
  EXPECT_EQ(rhs_text(loop, 0), "(X[i] + 0)");
  EXPECT_EQ(rhs_text(loop, 1), "(X[i] * 0)");
  EXPECT_EQ(rhs_text(loop, 2), "(X[i] - X[i])");
}

TEST(FoldConstants, FoldsConstantSelects) {
  ir::Loop loop = parsed("for i:\n  if 2 > 1 { T[i] = X[i] } else { T[i] = 0 }\n");
  // if-conversion produced select((2 > 1), X[i], T[i]) and
  // select((!(2 > 1)), 0, T[i]); folding collapses both guards.
  opt::FoldConstants fold;
  EXPECT_GT(run_pass(fold, loop), 0);
  EXPECT_EQ(rhs_text(loop, 0), "X[i]");
  EXPECT_EQ(rhs_text(loop, 1), "T[i]");
}

TEST(FoldConstants, UsesEvaluatorSemantics) {
  // The folded value must be the exact double the evaluator computes —
  // same operator implementation, by construction.
  ir::Loop loop = parsed("for i:\n  T[i] = 1 / 3 + 2 / 3\n");
  opt::FoldConstants fold;
  run_pass(fold, loop);
  ASSERT_EQ(loop.body[0].rhs->kind, ir::Expr::Kind::Const);
  EXPECT_EQ(loop.body[0].rhs->value,
            opt::apply_binary("+", opt::apply_binary("/", 1.0, 3.0),
                              opt::apply_binary("/", 2.0, 3.0)));
}

// ---------------------------------------------------------------------------
// Strength reduction

TEST(StrengthReduce, RewritesTimesTwoToAdd) {
  ir::Loop loop = parsed("for i:\n  A[i] = A[i-1] * 2\n  B[i] = 2 * A[i-1]\n");
  const int before = ir::analyze_dependences(loop).graph.node(0).latency;
  opt::StrengthReduce sr;
  EXPECT_EQ(run_pass(sr, loop), 2);
  EXPECT_EQ(rhs_text(loop, 0), "(A[i-1] + A[i-1])");
  EXPECT_EQ(rhs_text(loop, 1), "(A[i-1] + A[i-1])");
  // The measurable win: latency 1 + #muldiv drops 2 -> 1, which lowers
  // the recurrence bound of the A cycle.
  const int after = ir::analyze_dependences(loop).graph.node(0).latency;
  EXPECT_EQ(before, 2);
  EXPECT_EQ(after, 1);
}

TEST(StrengthReduce, SkipsMultiplyHeavySubtrees) {
  // Duplicating a subtree that contains a multiply would double-count it
  // under the latency model — no rewrite.
  ir::Loop loop = parsed("for i:\n  T[i] = (X[i] * Y[i]) * 2\n");
  opt::StrengthReduce sr;
  EXPECT_EQ(run_pass(sr, loop), 0);
}

TEST(StrengthReduce, DividesByPowersOfTwoOnly) {
  ir::Loop loop = parsed("for i:\n  A[i] = X[i] / 2\n  B[i] = X[i] / 3\n");
  opt::StrengthReduce sr;
  EXPECT_EQ(run_pass(sr, loop), 1);
  EXPECT_EQ(rhs_text(loop, 0), "(X[i] * 0.5)");
  EXPECT_EQ(rhs_text(loop, 1), "(X[i] / 3)");
}

// ---------------------------------------------------------------------------
// Dead-code elimination

TEST(Dce, NoOutputsMeansNoOp) {
  ir::Loop loop = parsed("for i:\n  S[i] = S[i-1]\n  T[i] = 7\n");
  opt::DeadCodeElim dce;
  EXPECT_EQ(run_pass(dce, loop), 0);
  EXPECT_EQ(loop.body.size(), 2u);
}

TEST(Dce, RemovesDeadKeepsTransitiveProducers) {
  ir::Loop loop = parsed(
      "out U\n"
      "for i:\n"
      "  S[i] = S[i-1] + X[i]\n"  // live: T reads it
      "  T[i] = S[i] * 0.5\n"     // live: U reads it
      "  D[i] = D[i-1] + S[i]\n"  // dead: nothing downstream
      "  U[i] = T[i] + S[i-1]\n");
  opt::DeadCodeElim dce;
  EXPECT_EQ(run_pass(dce, loop), 1);
  ASSERT_EQ(loop.body.size(), 3u);
  EXPECT_EQ(loop.body[0].target, "S");
  EXPECT_EQ(loop.body[1].target, "T");
  EXPECT_EQ(loop.body[2].target, "U");
}

TEST(Dce, KeepsUndefinedOutputsLoopIntact) {
  // Degenerate: the declared output is never defined; removing the whole
  // body would leave nothing to schedule, so the pass backs off.
  ir::Loop loop = parsed("out Z\nfor i:\n  S[i] = S[i-1]\n");
  opt::DeadCodeElim dce;
  EXPECT_EQ(run_pass(dce, loop), 0);
  EXPECT_EQ(loop.body.size(), 1u);
}

// ---------------------------------------------------------------------------
// Fission

TEST(Fission, SplitsTwoStrandsIntoIndependentSchedules) {
  const ir::Loop loop = parsed(
      "for i:\n"
      "  A[i] = A[i-1] + X[i]\n"
      "  B[i] = A[i-1] * 0.5\n"
      "  C[i] = C[i-1] + Y[i]\n"
      "  D[i] = C[i] + C[i-1]\n");
  const std::vector<ir::Loop> strands = opt::fission(loop);
  ASSERT_EQ(strands.size(), 2u);
  EXPECT_EQ(strands[0].body[0].target, "A");
  EXPECT_EQ(strands[0].body[1].target, "B");
  EXPECT_EQ(strands[1].body[0].target, "C");
  EXPECT_EQ(strands[1].body[1].target, "D");

  // Each strand schedules on its own — two independent programs.
  ParallelizeOptions opts;
  opts.machine = Machine{2, 1};
  opts.iterations = 16;
  opts.emit_code = false;
  std::vector<ParallelizeResult> results;
  for (const ir::Loop& strand : strands) {
    const ir::DependenceResult dep = ir::analyze_dependences(strand);
    EXPECT_EQ(dep.graph.num_nodes(), 2u);
    results.push_back(parallelize(dep.graph, opts));
  }
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].program.programs.size(), 0u);
  EXPECT_GT(results[1].program.programs.size(), 0u);
}

TEST(Fission, KeepsAllDefsOfOneArrayTogether) {
  // The two A definitions share no edge, but splitting them would change
  // which statement "the last def of A" names — they must stay together.
  const ir::Loop loop = parsed(
      "for i:\n"
      "  A[i] = X[i]\n"
      "  A[i] = Y[i]\n"
      "  B[i] = B[i-1] + Z[i]\n");
  const std::vector<ir::Loop> strands = opt::fission(loop);
  ASSERT_EQ(strands.size(), 2u);
  EXPECT_EQ(strands[0].body.size(), 2u);
  EXPECT_EQ(strands[0].body[0].target, "A");
  EXPECT_EQ(strands[0].body[1].target, "A");
  EXPECT_EQ(strands[1].body[0].target, "B");
}

TEST(Fission, SingleComponentUntouched) {
  const ir::Loop loop = parsed("for i:\n  S[i] = S[i-1] + X[i]\n  T[i] = S[i]\n");
  EXPECT_EQ(opt::fission(loop).size(), 1u);
}

TEST(Fission, StrandsInheritTheirOutputs) {
  const ir::Loop loop = parsed(
      "out A, C\nfor i:\n  A[i] = A[i-1]\n  C[i] = C[i-1]\n");
  const std::vector<ir::Loop> strands = opt::fission(loop);
  ASSERT_EQ(strands.size(), 2u);
  EXPECT_EQ(strands[0].outputs, (std::vector<std::string>{"A"}));
  EXPECT_EQ(strands[1].outputs, (std::vector<std::string>{"C"}));
}

// ---------------------------------------------------------------------------
// Pipeline

TEST(Pipeline, OffReturnsInputUntouched) {
  const ir::Loop loop = parsed("for i:\n  T[i] = (2 + 3) * X[i]\n");
  opt::OptOptions opts;
  opts.level = OptLevel::Off;
  const opt::PipelineResult res = opt::optimize(loop, opts);
  ASSERT_EQ(res.loops.size(), 1u);
  EXPECT_EQ(ir::to_string(res.loops[0]), ir::to_string(loop));
  EXPECT_TRUE(res.stats.empty());
}

TEST(Pipeline, ReachesFixedPointAcrossPassInterplay) {
  // Folding removes the *1, strength reduction then rewrites *2 — the
  // second round is needed to prove quiescence.
  const ir::Loop loop = parsed("for i:\n  A[i] = (A[i-1] * 1) * 2\n");
  const opt::PipelineResult res = opt::optimize(loop);
  EXPECT_TRUE(res.reached_fixed_point);
  ASSERT_EQ(res.loops.size(), 1u);
  EXPECT_EQ(ir::to_string(*res.loops[0].body[0].rhs), "(A[i-1] + A[i-1])");
}

TEST(Pipeline, FissionDisabledKeepsOneLoop) {
  const ir::Loop loop =
      parsed("for i:\n  A[i] = A[i-1]\n  B[i] = B[i-1]\n");
  opt::OptOptions opts;
  opts.enable_fission = false;
  const opt::PipelineResult res = opt::optimize(loop, opts);
  EXPECT_EQ(res.loops.size(), 1u);
  EXPECT_EQ(res.loops[0].body.size(), 2u);
}

// ---------------------------------------------------------------------------
// Evaluator sanity

TEST(Evaluator, ConstantStatement) {
  const ir::Loop loop = parsed("for i:\n  T[i] = 2 + 3\n");
  const opt::EvalResult res = opt::eval_loop(loop, 4);
  ASSERT_EQ(res.values.size(), 1u);
  for (const double v : res.values[0]) EXPECT_EQ(v, 5.0);
}

TEST(Evaluator, RecurrenceUsesCarriedValues) {
  const ir::Loop loop = parsed("for i:\n  S[i] = S[i-1] + 1\n");
  const opt::EvalResult res = opt::eval_loop(loop, 3);
  // Iteration 0 reads initial memory; later iterations chain.
  const double s0 = opt::array_input("S", -1) + 1.0;
  EXPECT_EQ(res.values[0][0], s0);
  EXPECT_EQ(res.values[0][1], s0 + 1.0);
  EXPECT_EQ(res.values[0][2], s0 + 2.0);
}

TEST(Evaluator, ObservablesRestrictToOutputs) {
  const ir::Loop loop =
      parsed("out T\nfor i:\n  S[i] = X[i]\n  T[i] = S[i]\n");
  const std::vector<opt::OutputStream> obs = opt::observable_streams(loop, 4);
  ASSERT_EQ(obs.size(), 1u);
  EXPECT_EQ(obs[0].array, "T");
}

// ---------------------------------------------------------------------------
// Cache-key separation

TEST(CacheKey, OptLevelSeparatesPlans) {
  const testsupport::GeneratedLoop gen = testsupport::generate_loop(11);
  CompileOptions off;
  off.opt = OptLevel::Off;
  CompileOptions o1;
  o1.opt = OptLevel::O1;
  EXPECT_NE(structural_hash(gen.program, gen.graph, off),
            structural_hash(gen.program, gen.graph, o1));

  PlanCache cache(8);
  (void)cache.get_or_compile(gen.program, gen.graph, off);
  (void)cache.get_or_compile(gen.program, gen.graph, o1);
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);   // one compile per level
  EXPECT_EQ(stats.entries, 2u);  // never aliased
  // Repeat lookups hit their own entry.
  (void)cache.get_or_compile(gen.program, gen.graph, off);
  (void)cache.get_or_compile(gen.program, gen.graph, o1);
  EXPECT_EQ(cache.stats().hits, 2u);
}

// ---------------------------------------------------------------------------
// The fuzz differential: 50 generated programs through both layers of
// the bit-exactness contract.

class OptFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptFuzz, OptimizedMatchesUnoptimizedAndSequential) {
  const testsupport::GeneratedIrLoop gen =
      testsupport::random_ir_loop(GetParam());
  SCOPED_TRACE(gen.tag + "\n" + gen.source);
  const ir::Loop original = [&] {
    const ir::Loop raw = ir::parse_loop(gen.source);
    return raw.has_control_flow() ? ir::if_convert(raw) : raw;
  }();

  // Layer 1 — IR semantics: the optimized program's observable streams
  // are bit-identical to the original's under the reference evaluator.
  constexpr std::int64_t kEvalIters = 12;
  const std::vector<opt::OutputStream> reference =
      opt::observable_streams(original, kEvalIters);
  const opt::PipelineResult pipe = opt::optimize(original);
  ASSERT_FALSE(pipe.loops.empty());
  EXPECT_TRUE(pipe.reached_fixed_point);
  EXPECT_TRUE(opt::streams_preserved(
      reference, opt::observable_streams(pipe.loops, kEvalIters)));

  // Layer 2 — runtime: every rewritten strand, scheduled and compiled,
  // runs bit-identical to its own sequential reference on both
  // transports (the same oracle the unoptimized pipeline must satisfy).
  ParallelizeOptions popts;
  popts.machine = Machine{2, 1};
  popts.iterations = 10;
  popts.emit_code = false;
  CompileOptions copts;
  copts.opt = OptLevel::O1;
  auto run_both_transports = [](const ParallelizeResult& r,
                                const CompileOptions& co) {
    const ExecutorPlan plan = compile(r.program, r.normalized.graph, co);
    const ExecutionResult reference =
        run_reference(r.normalized.graph, r.normalized_iterations);
    for (const Transport t : {Transport::Spsc, Transport::Mutex}) {
      RunOptions ropts;
      ropts.transport = t;
      const ExecutionResult par = plan.run(r.normalized_iterations, ropts);
      EXPECT_TRUE(values_match(par, reference, r.normalized_iterations))
          << "transport " << transport_name(t);
    }
  };
  for (const ir::Loop& strand : pipe.loops) {
    const ir::DependenceResult dep = ir::analyze_dependences(strand);
    run_both_transports(parallelize(dep.graph, popts), copts);
  }

  // The unoptimized program through the same runtime oracle, when it is
  // schedulable at all: a loop with several independent recurrences
  // trips the cyclic scheduler's connected-component precondition
  // without fission — exactly the gap the mid-end closes.
  try {
    const ir::DependenceResult dep = ir::analyze_dependences(original);
    CompileOptions off;
    off.opt = OptLevel::Off;
    run_both_transports(parallelize(dep.graph, popts), off);
  } catch (const ContractViolation&) {
    EXPECT_GT(gen.strands, 1) << "single-strand loop failed to schedule";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptFuzz, ::testing::Range<std::uint64_t>(0, 50));

}  // namespace
}  // namespace mimd
