#include <gtest/gtest.h>

#include "runtime/kernels.hpp"
#include "workloads/paper_examples.hpp"

namespace mimd {
namespace {

TEST(Kernels, InitialValuesAreDistinctPerNode) {
  EXPECT_NE(initial_value(0), initial_value(1));
  EXPECT_DOUBLE_EQ(initial_value(0), 0.5);
}

TEST(Kernels, SyntheticValueIsDeterministic) {
  const Ddg g = workloads::fig7_loop();
  const KernelOptions o;
  const std::vector<double> ops{1.0, 2.0};
  EXPECT_DOUBLE_EQ(synthetic_value(g, 0, 3, ops, o),
                   synthetic_value(g, 0, 3, ops, o));
}

TEST(Kernels, SyntheticValueDependsOnOperandOrder) {
  const Ddg g = workloads::fig7_loop();
  const KernelOptions o;
  EXPECT_NE(synthetic_value(g, 0, 0, {1.0, 2.0}, o),
            synthetic_value(g, 0, 0, {2.0, 1.0}, o));
}

TEST(Kernels, SyntheticValueStaysBounded) {
  const Ddg g = workloads::fig7_loop();
  const KernelOptions o;
  std::vector<double> ops{3.9, 3.9, 3.9};
  double v = 3.9;
  for (int i = 0; i < 1000; ++i) {
    v = synthetic_value(g, 1, i, {v, v}, o);
    EXPECT_LT(std::abs(v), 16.0);
  }
}

TEST(Kernels, WorkKnobDoesNotChangeValues) {
  const Ddg g = workloads::fig7_loop();
  KernelOptions fast, slow;
  slow.work_per_cycle = 100;
  const auto a = run_sequential(g, 20, fast);
  const auto b = run_sequential(g, 20, slow);
  EXPECT_EQ(a, b);
}

TEST(RunSequential, ShapesMatchGraphAndIterations) {
  const Ddg g = workloads::cytron86_loop();
  const auto out = run_sequential(g, 9);
  ASSERT_EQ(out.size(), g.num_nodes());
  for (const auto& row : out) EXPECT_EQ(row.size(), 9u);
}

TEST(RunSequential, RecurrenceActuallyEvolves) {
  const Ddg g = workloads::fig7_loop();
  const auto out = run_sequential(g, 10);
  const NodeId a = *g.find("A");
  // A[i] = f(A[i-1], E[i-1]) is non-constant across iterations.
  EXPECT_NE(out[a][0], out[a][5]);
}

TEST(RunSequential, UsesInitialValuesBeforeIterationZero) {
  // Single self-recurrence node: first value folds initial_value(0).
  Ddg g;
  const NodeId x = g.add_node("X");
  g.add_edge(x, x, 1);
  const auto out = run_sequential(g, 2);
  const KernelOptions o;
  EXPECT_DOUBLE_EQ(out[x][0],
                   synthetic_value(g, x, 0, {initial_value(x)}, o));
  EXPECT_DOUBLE_EQ(out[x][1], synthetic_value(g, x, 1, {out[x][0]}, o));
}

TEST(RunSequential, ZeroIterations) {
  const Ddg g = workloads::fig7_loop();
  const auto out = run_sequential(g, 0);
  EXPECT_EQ(out.size(), g.num_nodes());
  EXPECT_TRUE(out[0].empty());
}

}  // namespace
}  // namespace mimd
