#include "schedule/cyclic_sched.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/algorithms.hpp"

namespace mimd {

namespace {

/// Ready-queue key: the consistent total order required by footnote 7.
/// Instances are served iteration-first, then by intra-iteration topological
/// rank, then by node id.
using ReadyKey = std::tuple<std::int64_t, int, NodeId>;

struct Checkpoint {
  std::int64_t iter;
  std::int64_t t0;
  std::size_t decisions;
};

class Scheduler {
 public:
  Scheduler(const Ddg& g, const Machine& m, const CyclicSchedOptions& opts)
      : g_(g), m_(m), opts_(opts), sched_(m.processors) {
    MIMD_EXPECTS(g.num_nodes() > 0);
    MIMD_EXPECTS(g.distances_normalized());
    rank_.resize(g.num_nodes());
    if (opts.order == ReadyOrder::Topological) {
      const auto order = topo_order_intra(g);
      for (std::size_t i = 0; i < order.size(); ++i) {
        rank_[order[i]] = static_cast<int>(i);
      }
    } else {
      // Critical-path priority: height = longest intra-iteration path
      // starting at the node (its own latency included); taller first.
      const auto order = topo_order_intra(g);
      std::vector<std::int64_t> height(g.num_nodes(), 0);
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        const NodeId v = *it;
        std::int64_t below = 0;
        for (const EdgeId eid : g.out_edges(v)) {
          if (g.edge(eid).distance == 0) {
            below = std::max(below, height[g.edge(eid).dst]);
          }
        }
        height[v] = below + g.node(v).latency;
      }
      std::vector<NodeId> by_height(g.num_nodes());
      for (NodeId v = 0; v < g.num_nodes(); ++v) by_height[v] = v;
      std::sort(by_height.begin(), by_height.end(),
                [&](NodeId a, NodeId b) {
                  if (height[a] != height[b]) return height[a] > height[b];
                  return a < b;
                });
      for (std::size_t i = 0; i < by_height.size(); ++i) {
        rank_[by_height[i]] = static_cast<int>(i);
      }
    }
    indeg0_.assign(g.num_nodes(), 0);
    indeg1_.assign(g.num_nodes(), 0);
    for (const Edge& e : g.edges()) {
      ++(e.distance == 0 ? indeg0_ : indeg1_)[e.dst];
    }
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (indeg0_[v] == 0) ready_.insert({0, rank_[v], v});
      if (indeg0_[v] == 0 && indeg1_[v] == 0) has_roots_ = true;
    }
    // Automatic lead window: a safe upper bound on one iteration's
    // schedule span (every node plus a communication hop on some path),
    // doubled for slack, so the throttle can never slow the binding
    // recurrence (window >= span / rate since rate >= 1).
    window_ = opts.lead_window > 0
                  ? opts.lead_window
                  : 2 * (g.body_latency() +
                         static_cast<std::int64_t>(m.comm_estimate + 1) *
                             static_cast<std::int64_t>(g.num_nodes())) +
                        16;
  }

  CyclicSchedResult run() {
    const bool horizon_mode = opts_.horizon_iterations >= 0;
    // Patterns only exist for connected graphs (Section 2.1, Lemma 3):
    // disconnected components settle into different rates and their union
    // never repeats.  Use component_cyclic_sched for disconnected loops.
    // Horizon mode does not detect patterns and tolerates anything.
    if (!horizon_mode) {
      MIMD_EXPECTS(connected_components(g_).size() == 1);
    }
    const std::int64_t iter_bound =
        horizon_mode ? opts_.horizon_iterations : opts_.max_iterations;

    while (!ready_.empty() && !pattern_.has_value()) {
      const auto [iter, rk, v] = *ready_.begin();
      ready_.erase(ready_.begin());
      (void)rk;
      if (iter >= iter_bound) {
        if (horizon_mode) continue;  // drop instances beyond the horizon
        break;                       // safety bound exceeded, no pattern
      }
      schedule_instance(v, iter, /*detect=*/!horizon_mode);
    }
    return CyclicSchedResult{std::move(sched_), std::move(pattern_),
                             next_checkpoint_};
  }

 private:
  void schedule_instance(NodeId v, std::int64_t iter, bool detect) {
    const Inst inst{v, iter};

    // Iteration-lead throttle (see CyclicSchedOptions::lead_window).
    std::int64_t throttle = 0;
    if (iter >= window_) {
      const auto it = done_time_.find(iter - window_);
      if (it != done_time_.end()) throttle = it->second;
    }

    // Processor selection: first minimum of T(v, Pj) over all processors
    // (Figure 4, step 2).
    int best_proc = -1;
    std::int64_t best_start = 0;
    for (int p = 0; p < m_.processors; ++p) {
      std::int64_t t = std::max(sched_.next_free(p), throttle);
      for (const EdgeId eid : g_.in_edges(v)) {
        const Edge& e = g_.edge(eid);
        const std::int64_t src_iter = iter - e.distance;
        if (src_iter < 0) continue;
        const auto src = sched_.lookup(Inst{e.src, src_iter});
        MIMD_ENSURES(src.has_value());  // pop order is topological
        t = std::max(t, src->finish +
                            (src->proc == p ? 0 : m_.comm_cost(e)));
      }
      if (best_proc < 0 || t < best_start) {
        best_proc = p;
        best_start = t;
      }
    }
    sched_.place(inst, best_proc, best_start,
                 best_start + g_.node(v).latency);
    auto& done = done_time_[iter];
    done = std::max(done, best_start + g_.node(v).latency);
    max_seen_iter_ = std::max(max_seen_iter_, iter);

    // Liveness bookkeeping: an instance is "live" while it still has
    // unscheduled successors — exactly the instances whose finish times can
    // influence future decisions.
    if (!g_.out_edges(v).empty()) {
      succ_left_.emplace(inst, static_cast<int>(g_.out_edges(v).size()));
    }
    for (const EdgeId eid : g_.in_edges(v)) {
      const Edge& e = g_.edge(eid);
      const std::int64_t src_iter = iter - e.distance;
      if (src_iter < 0) continue;
      const auto it = succ_left_.find(Inst{e.src, src_iter});
      MIMD_ENSURES(it != succ_left_.end());
      if (--it->second == 0) succ_left_.erase(it);
    }

    // Release successors (Figure 4, last step).
    for (const EdgeId eid : g_.out_edges(v)) {
      const Edge& e = g_.edge(eid);
      const Inst succ{e.dst, iter + e.distance};
      const int init = indeg0_[e.dst] + (succ.iter > 0 ? indeg1_[e.dst] : 0);
      const auto [it, inserted] = remaining_.try_emplace(succ, init);
      if (--it->second == 0) {
        remaining_.erase(it);
        ready_.insert({succ.iter, rank_[e.dst], e.dst});
      }
    }
    // Self-seeding roots: a node with no in-edges at all must be re-enqueued
    // for the next iteration by hand (no dependence will ever release it).
    if (indeg0_[v] == 0 && indeg1_[v] == 0) {
      ready_.insert({iter + 1, rank_[v], v});
    }

    // Iteration-completion checkpoints, in increasing iteration order.
    if (++done_in_iter_[iter] == g_.num_nodes()) {
      while (true) {
        const auto done = done_in_iter_.find(next_checkpoint_);
        if (done == done_in_iter_.end() || done->second != g_.num_nodes()) {
          break;
        }
        done_in_iter_.erase(done);
        if (detect) {
          take_checkpoint(next_checkpoint_);
        }
        ++next_checkpoint_;
        if (pattern_.has_value()) break;
      }
    }
  }

  /// Serialize the complete scheduler state relative to (cp_iter, t0) and
  /// look it up.  Equal signatures => the continuation repeats (bisimulation).
  void take_checkpoint(std::int64_t cp_iter) {
    std::int64_t t0 = 0;
    for (int p = 0; p < m_.processors; ++p) {
      t0 = std::max(t0, sched_.next_free(p));
    }

    std::vector<std::tuple<NodeId, std::int64_t, int, std::int64_t>> live;
    live.reserve(succ_left_.size());
    for (const auto& [inst, left] : succ_left_) {
      (void)left;
      const auto pl = sched_.lookup(inst);
      live.emplace_back(inst.node, inst.iter - cp_iter, pl->proc,
                        pl->finish - t0);
    }
    std::sort(live.begin(), live.end());

    // In a root-free graph (every Cyclic subgraph is one) no future
    // instance can start before the oldest live finish: data_ready is a
    // max over predecessors, all of which are live or scheduled later.  A
    // processor whose next_free lies at or below that floor therefore
    // behaves exactly like one resting *at* the floor — clamp, or the
    // offsets of never-used processors would diverge and no configuration
    // would ever repeat.  With root nodes (possible in Fold mode) the raw
    // value matters (roots start at next_free itself), and roots keep all
    // processors busy, so the offsets stay bounded without clamping.
    std::int64_t floor = 0;
    for (const auto& [node, io, proc, fo] : live) {
      floor = std::min(floor, fo);
    }
    // Root instances start at max(next_free, throttle), so for graphs with
    // roots the clamp must also stay below every future throttle value;
    // the earliest future pop is iteration cp+1, throttled by
    // done[cp+1-window].  Until the throttle becomes active, raw offsets
    // are used (early checkpoints simply do not match, which is harmless).
    bool clamp = !has_roots_;
    if (has_roots_ && cp_iter + 1 >= window_) {
      const auto it = done_time_.find(cp_iter + 1 - window_);
      if (it != done_time_.end()) {
        floor = std::min(floor, it->second - t0);
        clamp = true;
      }
    }
    std::ostringstream sig;
    sig << "nf:";
    for (int p = 0; p < m_.processors; ++p) {
      const std::int64_t off = sched_.next_free(p) - t0;
      sig << (clamp ? std::max(off, floor) : off) << ',';
    }

    // The throttle makes future decisions depend on the completion times
    // of recent iterations — including the *partial* completion times of
    // iterations beyond the checkpoint, whose already-placed instances
    // contribute to future done[] maxima; all of it is state.
    sig << "|done:";
    for (std::int64_t j = std::max<std::int64_t>(0, cp_iter - window_);
         j <= max_seen_iter_; ++j) {
      const auto it = done_time_.find(j);
      if (it == done_time_.end()) {
        sig << "x,";
      } else {
        sig << (it->second - t0) << ',';
      }
    }
    sig << "|live:";
    for (const auto& [node, io, proc, fo] : live) {
      sig << node << ',' << io << ',' << proc << ',' << fo << ';';
    }

    sig << "|ready:";
    for (const auto& [iter, rk, node] : ready_) {
      (void)rk;
      sig << node << ',' << (iter - cp_iter) << ';';
    }

    const auto [it, inserted] = seen_.try_emplace(
        sig.str(),
        Checkpoint{cp_iter, t0, sched_.placements().size()});
    if (inserted) return;

    // Pattern found between checkpoint `it->second` and now.
    const Checkpoint& first = it->second;
    Pattern pat;
    pat.period_iters = cp_iter - first.iter;
    pat.period_cycles = t0 - first.t0;
    MIMD_ENSURES(pat.period_iters >= 1);
    MIMD_ENSURES(pat.period_cycles >= 1);
    const auto& all = sched_.placements();
    pat.prologue.assign(all.begin(),
                        all.begin() + static_cast<std::ptrdiff_t>(first.decisions));
    pat.kernel.assign(all.begin() + static_cast<std::ptrdiff_t>(first.decisions),
                      all.end());
    MIMD_ENSURES(!pat.kernel.empty());
    std::int64_t min_iter = pat.kernel.front().inst.iter;
    for (const Placement& p : pat.kernel) {
      min_iter = std::min(min_iter, p.inst.iter);
    }
    pat.first_iter = min_iter;
    pattern_ = std::move(pat);
  }

  const Ddg& g_;
  const Machine& m_;
  const CyclicSchedOptions& opts_;

  Schedule sched_;
  std::vector<int> rank_;
  std::vector<int> indeg0_, indeg1_;
  std::set<ReadyKey> ready_;
  std::unordered_map<Inst, int, InstHash> remaining_;
  std::unordered_map<Inst, int, InstHash> succ_left_;
  std::unordered_map<std::int64_t, std::size_t> done_in_iter_;
  std::int64_t next_checkpoint_ = 0;
  std::unordered_map<std::string, Checkpoint> seen_;
  std::optional<Pattern> pattern_;
  bool has_roots_ = false;
  std::int64_t window_ = 0;
  std::int64_t max_seen_iter_ = 0;
  std::unordered_map<std::int64_t, std::int64_t> done_time_;
};

}  // namespace

CyclicSchedResult cyclic_sched(const Ddg& g, const Machine& m,
                               const CyclicSchedOptions& opts) {
  return Scheduler(g, m, opts).run();
}

}  // namespace mimd
