// Blocking FIFO channel for the threaded MIMD runtime, mutex+condvar
// flavor — the portable baseline transport (Transport::Mutex).
//
// One channel per (dependence edge, producer processor, consumer
// processor); values flow in iteration order (the lowering guarantees
// FIFO, see partition/partitioned_loop.hpp).  The lock-free fast path
// lives in runtime/spsc_ring.hpp; this implementation is kept as the
// reference both can be validated and benchmarked against
// (bench_channel_transport).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>

namespace mimd {

/// The unit every transport carries: one value, tagged with its producing
/// iteration so receivers can assert FIFO delivery.
struct ChannelMessage {
  std::int64_t iter = 0;  ///< producing iteration, for FIFO validation
  double value = 0.0;
};

class ValueChannel {
 public:
  using Message = ChannelMessage;

  void send(Message m) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      q_.push_back(m);
    }
    cv_.notify_one();
  }

  Message receive() {
    // Hybrid wait: spin briefly first (messages in a steady pipeline
    // arrive within microseconds, and a condvar wake-up costs more than
    // the wait itself on a saturated machine), then block.
    for (int spin = 0; spin < 4096; ++spin) {
      {
        const std::lock_guard<std::mutex> lock(mu_);
        if (!q_.empty()) {
          const Message m = q_.front();
          q_.pop_front();
          return m;
        }
      }
      if ((spin & 255) == 255) std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !q_.empty(); });
    const Message m = q_.front();
    q_.pop_front();
    return m;
  }

  [[nodiscard]] std::size_t pending() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> q_;
};

}  // namespace mimd
