#include "ir/loop.hpp"

#include <sstream>

namespace mimd::ir {

namespace {

void render(const Stmt& s, const std::string& ind, int depth,
            std::ostringstream& out) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  if (s.kind == Stmt::Kind::Assign) {
    out << pad << s.target << '[' << ind;
    if (s.target_offset > 0) out << '+' << s.target_offset;
    if (s.target_offset < 0) out << s.target_offset;
    out << "] = " << to_string(*s.rhs, ind);
    if (s.latency > 0) out << " @" << s.latency;
    out << '\n';
  } else {
    out << pad << "if " << to_string(*s.guard, ind) << " {\n";
    for (const Stmt& t : s.then_body) render(t, ind, depth + 1, out);
    if (!s.else_body.empty()) {
      out << pad << "} else {\n";
      for (const Stmt& t : s.else_body) render(t, ind, depth + 1, out);
    }
    out << pad << "}\n";
  }
}

bool any_if(const std::vector<Stmt>& body) {
  for (const Stmt& s : body) {
    if (s.kind == Stmt::Kind::If) return true;
  }
  return false;
}

}  // namespace

bool Loop::has_control_flow() const { return any_if(body); }

std::string to_string(const Loop& loop) {
  std::ostringstream out;
  if (!loop.outputs.empty()) {
    out << "out ";
    for (std::size_t i = 0; i < loop.outputs.size(); ++i) {
      if (i > 0) out << ", ";
      out << loop.outputs[i];
    }
    out << '\n';
  }
  out << "for " << loop.induction << ":\n";
  for (const Stmt& s : loop.body) render(s, loop.induction, 1, out);
  return out.str();
}

}  // namespace mimd::ir
