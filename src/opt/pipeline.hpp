// The pass pipeline: the one entry point the front end calls between
// if-conversion and dependence analysis / partitioning.
//
// Scalar passes (fold-constants -> strength-reduce -> dce) run in order,
// round-robin, until a full round applies zero rewrites (fixed point) or
// max_rounds is hit; dependence analysis is recomputed before every pass
// invocation so no pass sees a stale DDG.  Fission runs once at the end
// — it changes the program's shape (1 loop -> N strands), so it can't
// participate in the round-robin.
//
// OptLevel::Off returns the input untouched with empty stats: `--opt=off`
// must reproduce pre-mid-end behavior bit-for-bit.
#pragma once

#include <string>
#include <vector>

#include "ir/loop.hpp"
#include "opt/opt_level.hpp"
#include "opt/pass.hpp"

namespace mimd::opt {

struct OptOptions {
  OptLevel level = OptLevel::O1;
  /// Fission can be disabled independently: `mimdc --c` needs one
  /// compilable artifact per source file, so it folds but never splits.
  bool enable_fission = true;
  int max_rounds = 8;
};

struct PipelineResult {
  /// The rewritten program: one loop normally, N independent strands
  /// when fission split it.  Always non-empty.
  std::vector<ir::Loop> loops;
  std::vector<PassStats> stats;
  int rounds = 0;
  bool reached_fixed_point = true;
};

PipelineResult optimize(const ir::Loop& loop, const OptOptions& opts = {});

/// Human-readable per-pass stats for `mimdc --dump-passes`.
std::string format_stats(const PipelineResult& result);

}  // namespace mimd::opt
