#include "opt/fold_constants.hpp"

#include <bit>
#include <cstdint>

#include "opt/eval.hpp"

namespace mimd::opt {

namespace {

// Bit-pattern compare: 0.0 == -0.0 under operator==, but x - (-0.0) -> x
// is wrong for x = -0.0 (it yields +0.0), so the zero identity must only
// match the positive zero bit pattern.
bool is_const(const ir::ExprPtr& e, double v) {
  return e->kind == ir::Expr::Kind::Const &&
         std::bit_cast<std::uint64_t>(e->value) == std::bit_cast<std::uint64_t>(v);
}

ir::ExprPtr rewrite(const ir::ExprPtr& e, int& n) {
  using Kind = ir::Expr::Kind;
  if (e->args.empty()) return e;

  // Children first, rebuilding only when something changed (ExprPtr is
  // an immutable shared tree — untouched subtrees are shared).
  std::vector<ir::ExprPtr> kids;
  kids.reserve(e->args.size());
  bool changed = false;
  for (const ir::ExprPtr& a : e->args) {
    kids.push_back(rewrite(a, n));
    changed = changed || kids.back() != a;
  }
  ir::ExprPtr cur = e;
  if (changed) {
    switch (e->kind) {
      case Kind::Unary:
        cur = ir::unary(e->name, kids[0]);
        break;
      case Kind::Binary:
        cur = ir::binary(e->name, kids[0], kids[1]);
        break;
      case Kind::Select:
        cur = ir::select(kids[0], kids[1], kids[2]);
        break;
      default:
        MIMD_UNREACHABLE("leaf with arguments");
    }
  }

  if (cur->kind == Kind::Unary) {
    const ir::ExprPtr& a = cur->args[0];
    if (a->kind == Kind::Const) {
      ++n;
      return ir::constant(apply_unary(cur->name, a->value));
    }
    // -(-x) -> x: exact (negation only flips the sign bit).
    if (cur->name == "-" && a->kind == Kind::Unary && a->name == "-") {
      ++n;
      return a->args[0];
    }
    return cur;
  }

  if (cur->kind == Kind::Binary) {
    const ir::ExprPtr& l = cur->args[0];
    const ir::ExprPtr& r = cur->args[1];
    if (l->kind == Kind::Const && r->kind == Kind::Const) {
      ++n;
      return ir::constant(apply_binary(cur->name, l->value, r->value));
    }
    // Exact identities only; see the header for the rejected ones.
    if (cur->name == "*" && is_const(r, 1.0)) { ++n; return l; }
    if (cur->name == "*" && is_const(l, 1.0)) { ++n; return r; }
    if (cur->name == "/" && is_const(r, 1.0)) { ++n; return l; }
    if (cur->name == "-" && is_const(r, 0.0)) { ++n; return l; }
    return cur;
  }

  if (cur->kind == Kind::Select && cur->args[0]->kind == Kind::Const) {
    ++n;
    return apply_select(cur->args[0]->value, 1.0, 0.0) != 0.0 ? cur->args[1]
                                                              : cur->args[2];
  }
  return cur;
}

}  // namespace

int FoldConstants::run(ir::Loop& loop, const ir::DependenceResult&) {
  int n = 0;
  for (ir::Stmt& s : loop.body) s.rhs = rewrite(s.rhs, n);
  return n;
}

}  // namespace mimd::opt
