// The liveness-based slot-reuse pass (partition/compiled_program.cpp):
// never worse than SSA, asymptotically better on long pipelined programs,
// and invisible in the results — every execution stays bit-identical to
// run_sequential with reuse on and off.
#include <gtest/gtest.h>

#include "partition/compiled_program.hpp"
#include "partition/lowering.hpp"
#include "runtime/executor.hpp"
#include "schedule/cyclic_sched.hpp"
#include "schedule/full_sched.hpp"
#include "workloads/livermore.hpp"
#include "workloads/paper_examples.hpp"
#include "workloads/random_loops.hpp"

namespace mimd {
namespace {

PartitionedProgram pattern_program(const Ddg& g, const Machine& m,
                                   std::int64_t n) {
  const CyclicSchedResult r = cyclic_sched(g, m);
  EXPECT_TRUE(r.pattern.has_value());
  return lower(materialize(*r.pattern, m.processors, n), g);
}

CompileOptions ssa_opts() {
  CompileOptions o;
  o.slots = SlotPolicy::Ssa;
  return o;
}

/// Reads through reused slots must still see the value their SSA
/// counterpart saw; the cheapest full check is executing both and
/// comparing against the sequential oracle.
void expect_both_policies_match_sequential(const PartitionedProgram& p,
                                           const Ddg& g, std::int64_t n) {
  const auto reference = run_sequential(g, n);
  for (const SlotPolicy policy : {SlotPolicy::Reuse, SlotPolicy::Ssa}) {
    CompileOptions copts;
    copts.slots = policy;
    const ExecutorPlan plan = compile(p, g, copts);
    for (const Transport t : {Transport::Spsc, Transport::Mutex}) {
      RunOptions opts;
      opts.transport = t;
      const ExecutionResult res = plan.run(n, opts);
      for (std::size_t v = 0; v < reference.size(); ++v) {
        for (std::int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(res.values[v][static_cast<std::size_t>(i)],
                    reference[v][static_cast<std::size_t>(i)])
              << "policy " << static_cast<int>(policy) << " node " << v
              << " iter " << i;
        }
      }
    }
  }
}

TEST(SlotReuse, NeverIncreasesSlotCountOnAnyWorkload) {
  struct Case {
    const char* name;
    Ddg g;
    Machine m;
  };
  const Case cases[] = {
      {"fig7", workloads::fig7_loop(), Machine{2, 2}},
      {"cytron", workloads::cytron86_loop(), Machine{8, 2}},
      {"ll18", workloads::livermore18_loop(), Machine{4, 2}},
      {"ll20", workloads::ll20_discrete_ordinates(), Machine{3, 2}},
      {"rand7", workloads::random_connected_cyclic_loop(7), Machine{4, 3}},
  };
  for (const Case& c : cases) {
    const FullSchedResult r = full_sched(c.g, c.m, 16);
    const PartitionedProgram p = lower(r.schedule, c.g);
    const CompiledProgram reuse = compile_program(p, c.g);
    const CompiledProgram ssa = compile_program(p, c.g, ssa_opts());
    ASSERT_EQ(reuse.threads.size(), ssa.threads.size()) << c.name;
    for (std::size_t t = 0; t < reuse.threads.size(); ++t) {
      EXPECT_LE(reuse.threads[t].num_slots, ssa.threads[t].num_slots)
          << c.name << " thread " << t;
      EXPECT_EQ(reuse.threads[t].num_slots_ssa, ssa.threads[t].num_slots)
          << c.name << " thread " << t;
    }
    EXPECT_LE(reuse.total_slots(), ssa.total_slots()) << c.name;
  }
}

TEST(SlotReuse, ShrinksLongPipelinedProgramToLiveValues) {
  // The long-program bound: SSA allocates one slot per value instance, so
  // fig7 over n = 200 iterations needs >= 200 slots in total; the live set
  // of a periodic steady state is O(pattern height), independent of n.
  // The explicit before/after bound: >= 200 slots down to <= 16.
  const Ddg g = workloads::fig7_loop();
  const std::int64_t n = 200;
  const PartitionedProgram p = pattern_program(g, Machine{2, 2}, n);
  const CompiledProgram reuse = compile_program(p, g);
  const CompiledProgram ssa = compile_program(p, g, ssa_opts());
  EXPECT_GE(ssa.total_slots(), 200u);
  EXPECT_LE(reuse.total_slots(), 16u);
  // And the footprint no longer grows with n.
  const PartitionedProgram p2 = pattern_program(g, Machine{2, 2}, 2 * n);
  const CompiledProgram reuse2 = compile_program(p2, g);
  EXPECT_EQ(reuse2.total_slots(), reuse.total_slots());
}

TEST(SlotReuse, ReusedSlotsStayInBoundsAndOperandsResolve) {
  const Ddg g = workloads::random_connected_cyclic_loop(11);
  const std::int64_t n = 24;
  const PartitionedProgram p = pattern_program(g, Machine{4, 3}, n);
  const CompiledProgram cp = compile_program(p, g);
  for (const CompiledThread& t : cp.threads) {
    for (const CompiledOp& op : t.ops) {
      EXPECT_LT(op.slot, t.num_slots);  // writes and send-reads alike
    }
    for (const OperandRef& r : t.operands) {
      if (r.kind == OperandRef::Kind::LocalSlot) {
        EXPECT_LT(r.index, t.num_slots);
      }
    }
  }
}

TEST(SlotReuse, ExecutionBitIdenticalToSequentialWithReuseOnAndOff) {
  const Ddg g = workloads::fig7_loop();
  const std::int64_t n = 48;
  expect_both_policies_match_sequential(pattern_program(g, Machine{2, 2}, n),
                                        g, n);
}

TEST(SlotReuse, RandomLoopsBitIdenticalUnderBothPolicies) {
  for (const std::uint64_t seed : {5u, 13u, 21u}) {
    const Ddg g = workloads::random_connected_cyclic_loop(seed);
    const std::int64_t n = 16;
    expect_both_policies_match_sequential(
        pattern_program(g, Machine{4, 3}, n), g, n);
  }
}

TEST(SlotReuse, FullScheduleWorkloadsBitIdenticalUnderBothPolicies) {
  const Ddg g = workloads::livermore18_loop();
  const std::int64_t n = 24;
  const FullSchedResult r = full_sched(g, Machine{4, 2}, n);
  expect_both_policies_match_sequential(lower(r.schedule, g), g, n);
}

}  // namespace
}  // namespace mimd
