// run_batch — the plan service's front door: push N independent loop
// instances through one shared PlanCache and one persistent WorkerPool,
// concurrently, and report throughput.
//
// This is the first end-to-end "many requests, one compiled program"
// scenario from the ROADMAP's north star: a service holding a warm cache
// of compiled plans and a warm pool of workers, where a request costs
// a hash lookup plus a pooled run instead of a full
// partition/compile/spawn cycle.  Duplicate structures across the batch
// — the common case for a service replaying the same hot loops — compile
// exactly once (PlanCache dedupes concurrent first requests too).
//
// Concurrency shape: `concurrency` driver threads pull jobs from a
// shared cursor; each driver resolves its job's plan in the cache and
// runs it on the pool.  Driver threads are plain std::threads (they
// spend their life blocked in run_gang), the pool's workers do the
// actual loop execution.  Results land in per-job slots, so the output
// vector is in job order regardless of completion order.
//
// mimdc --batch <dir> and bench_plan_service are the two callers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/executor.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/worker_pool.hpp"

namespace mimd {

/// One independent loop instance to execute.
struct BatchJob {
  PartitionedProgram program;
  Ddg graph;
  /// Iterations to run; 0 means the program's own compiled count.
  std::int64_t iterations = 0;
  CompileOptions copts;
  /// Transport / kernel / pinning for this job.  `pool` is overridden by
  /// the batch driver — every job runs on the shared pool.
  RunOptions ropts;
};

/// How the native tier served a set of resolved jobs.  `native` counts
/// every kernel-served job; `pooled` is the subset dispatched through the
/// ABI v2 caller-provides-the-threads entry onto the shared WorkerPool
/// (the warm path with no pthread_create at all); `ineligible` counts
/// jobs that had a published kernel but ran interpreted anyway (request
/// shape or iteration count outside what the kernel implements) — the
/// counter that tells an operator why warm traffic isn't native.
struct JitRunCounters {
  std::uint64_t native = 0;
  std::uint64_t pooled = 0;
  std::uint64_t ineligible = 0;
};

struct BatchReport {
  /// One result per job, in job order.
  std::vector<ExecutionResult> results;
  /// Cache stats after the batch (deltas vs before are the batch's own).
  PlanCache::Stats cache_stats;
  /// End-to-end wall time for the whole batch, including compiles.
  double wall_seconds = 0.0;
  /// Jobs served by a published native kernel instead of the interpreted
  /// executor (always 0 for a cache without JIT).
  std::uint64_t jit_native_runs = 0;
  /// Subset of jit_native_runs dispatched onto the shared pool (ABI v2).
  std::uint64_t jit_pooled_runs = 0;
  /// Jobs with a published kernel that still ran interpreted.
  std::uint64_t jit_ineligible_runs = 0;
};

/// Run every job through `cache` + `pool` with `concurrency` concurrent
/// drivers (0 = hardware_concurrency, clamped to the job count).  If a
/// job's program is ill-formed, peers stop picking up new jobs, in-flight
/// jobs finish, and the first error (what compile() throws) is rethrown
/// after all drivers drain.
BatchReport run_batch(const std::vector<BatchJob>& jobs, PlanCache& cache,
                      WorkerPool& pool, std::size_t concurrency = 0);

/// One already-resolved plan to execute — the post-cache form of BatchJob,
/// used where plans are held across requests (the mimdd daemon registers a
/// program once per connection and runs it many times).
struct PlanJob {
  std::shared_ptr<const ExecutorPlan> plan;
  /// Iterations to run; 0 means the plan's own compiled count.
  std::int64_t iterations = 0;
  /// `pool` is overridden — every job runs on the shared pool.
  RunOptions ropts;
  /// Optional published native kernel for this plan (the cache entry's
  /// JitSlot snapshot).  Used iff ropts is jit_run_eligible and the
  /// iteration count covers the compiled program; otherwise the job runs
  /// interpreted.  Results are bit-identical either way.
  std::shared_ptr<const JitKernel> kernel;
};

/// run_batch without the cache leg: execute pre-resolved plans on `pool`
/// with the same concurrent-driver shape and error discipline (first error
/// — e.g. iterations below the compiled count — rethrown after the drain).
/// Results are in job order.  `counters`, when non-null, receives the
/// native/pooled/ineligible dispatch tallies for the batch.
std::vector<ExecutionResult> run_plans(const std::vector<PlanJob>& jobs,
                                       WorkerPool& pool,
                                       std::size_t concurrency = 0,
                                       JitRunCounters* counters = nullptr);

}  // namespace mimd
