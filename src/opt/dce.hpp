// Dead-code elimination via DDG liveness.
//
// Only runs when the loop declares observable arrays (`out A, B` before
// the `for` header): with no declaration everything is observable and
// the pass is a conservative no-op, so every pre-existing `.loop`
// program is untouched.  Live statements are every definition of an
// output array, transitively closed over DDG in-edges (the producers
// dependence analysis says each live statement reads).  Everything else
// is removed.
//
// Legality: removing a dead statement never changes how a surviving
// read resolves.  A statement is dead only if no live statement has a
// dependence edge from it — and since dependence analysis resolves each
// read to the textually-last definition of the array (before the
// reader, or in the whole body for carried reads), a definition that
// some surviving read resolves to always has an edge to that reader and
// is therefore live.  So the reaching-definition maps restricted to
// surviving statements are unchanged, and with them every surviving
// value stream (opt/eval.hpp).
#pragma once

#include "opt/pass.hpp"

namespace mimd::opt {

class DeadCodeElim final : public Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "dce"; }
  int run(ir::Loop& loop, const ir::DependenceResult& deps) override;
};

}  // namespace mimd::opt
