#include <gtest/gtest.h>

#include "classify/classify.hpp"
#include "partition/codegen.hpp"
#include "schedule/full_sched.hpp"
#include "partition/lowering.hpp"
#include "schedule/cyclic_sched.hpp"
#include "workloads/paper_examples.hpp"

namespace mimd {
namespace {

Pattern fig7_pattern() {
  const CyclicSchedResult r =
      cyclic_sched(workloads::fig7_loop(), Machine{2, 2});
  EXPECT_TRUE(r.pattern.has_value());
  return *r.pattern;
}

TEST(Parbegin, HasParBlockStructure) {
  const Ddg g = workloads::fig7_loop();
  const std::string code = emit_parbegin(fig7_pattern(), g);
  EXPECT_EQ(code.find("PARBEGIN"), 0u);
  EXPECT_NE(code.find("PAREND"), std::string::npos);
  EXPECT_NE(code.find("PE0:"), std::string::npos);
  EXPECT_NE(code.find("PE1:"), std::string::npos);
}

TEST(Parbegin, EmitsSteadyStateLoops) {
  const Ddg g = workloads::fig7_loop();
  const Pattern p = fig7_pattern();
  const std::string code = emit_parbegin(p, g, "M");
  EXPECT_NE(code.find("FOR I = "), std::string::npos);
  EXPECT_NE(code.find("TO M-1 STEP " + std::to_string(p.period_iters)),
            std::string::npos);
  EXPECT_NE(code.find("ENDFOR"), std::string::npos);
}

TEST(Parbegin, EmitsSendReceivePairsForCrossProcessorEdges) {
  // Figure 7(e): the transformed loop ships A and D between the PEs.
  const Ddg g = workloads::fig7_loop();
  const std::string code = emit_parbegin(fig7_pattern(), g);
  EXPECT_NE(code.find("SEND"), std::string::npos);
  EXPECT_NE(code.find("RECEIVE"), std::string::npos);
  EXPECT_NE(code.find("FROM PE"), std::string::npos);
  EXPECT_NE(code.find("TO PE"), std::string::npos);
}

TEST(Parbegin, StatementsShowOperandOffsets) {
  const Ddg g = workloads::fig7_loop();
  const std::string code = emit_parbegin(fig7_pattern(), g);
  // A's statement reads its own previous value and E's: "A[...] = f(A[...
  EXPECT_NE(code.find("A["), std::string::npos);
  EXPECT_NE(code.find("= f("), std::string::npos);
}

TEST(Parbegin, MentionsSteadyStateRate) {
  const Ddg g = workloads::fig7_loop();
  const Pattern p = fig7_pattern();
  const std::string code = emit_parbegin(p, g);
  EXPECT_NE(code.find(std::to_string(p.period_cycles) + " cycles"),
            std::string::npos);
}

TEST(Listing, ShowsAllOpKindsAndTruncates) {
  const Ddg g = workloads::fig7_loop();
  const Machine m{2, 2};
  const CyclicSchedResult r = cyclic_sched(g, m);
  const PartitionedProgram prog =
      lower(materialize(*r.pattern, m.processors, 30), g);
  const std::string full = emit_listing(prog, g, 10000);
  EXPECT_NE(full.find("SEND"), std::string::npos);
  EXPECT_NE(full.find("RECEIVE"), std::string::npos);
  EXPECT_NE(full.find("= f(...)"), std::string::npos);

  const std::string trimmed = emit_listing(prog, g, 5);
  EXPECT_NE(trimmed.find("more)"), std::string::npos);
  EXPECT_LT(trimmed.size(), full.size());
}

TEST(Listing, SkipsEmptyProcessors) {
  Ddg g;
  g.add_node("A");
  PartitionedProgram prog;
  prog.processors = 3;
  prog.programs.resize(3);
  for (int i = 0; i < 3; ++i) prog.programs[i].proc = i;
  prog.programs[1].ops.push_back(Op{Op::Kind::Compute, Inst{0, 0}, 0, -1});
  const std::string s = emit_listing(prog, g);
  EXPECT_EQ(s.find("PE0"), std::string::npos);
  EXPECT_NE(s.find("PE1"), std::string::npos);
}

TEST(Parbegin, FlowInProducersRenderAsPoolReceives) {
  // The Figure-6 pipeline schedules Flow-in nodes outside the Cyclic
  // pattern; the cytron graph's 8 -> 3 edge must render as a receive from
  // the flow-in pool, as in the paper's Figure 10.
  const Ddg g = workloads::cytron86_loop();
  const FullSchedResult r = full_sched(g, Machine{8, 2}, 40);
  ASSERT_TRUE(r.pattern.has_value());
  const std::string code = emit_parbegin(*r.pattern, g);
  EXPECT_NE(code.find("FROM flow-in pool"), std::string::npos);
}

TEST(Parbegin, CytronEmitsOnePerProcessorEntry) {
  const Ddg g = workloads::cytron86_loop();
  const Ddg sub = cyclic_subgraph(g, classify(g));
  const CyclicSchedResult r = cyclic_sched(sub, Machine{8, 2});
  ASSERT_TRUE(r.pattern.has_value());
  const std::string code = emit_parbegin(*r.pattern, sub);
  // Two processors carry the cyclic pattern (paper Figure 9(c)).
  EXPECT_NE(code.find("PE0:"), std::string::npos);
  EXPECT_NE(code.find("PE1:"), std::string::npos);
  EXPECT_EQ(code.find("PE2:"), std::string::npos);
}

}  // namespace
}  // namespace mimd
