#include <gtest/gtest.h>

#include "schedule/schedule.hpp"
#include "workloads/paper_examples.hpp"

namespace mimd {
namespace {

TEST(Schedule, PlaceAndLookup) {
  Schedule s(2);
  s.place(Inst{0, 0}, 0, 0, 1);
  s.place(Inst{1, 0}, 1, 3, 5);
  const auto p = s.lookup(Inst{1, 0});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->proc, 1);
  EXPECT_EQ(p->start, 3);
  EXPECT_EQ(p->finish, 5);
  EXPECT_FALSE(s.lookup(Inst{2, 0}).has_value());
  EXPECT_TRUE(s.contains(Inst{0, 0}));
}

TEST(Schedule, NextFreeAdvances) {
  Schedule s(2);
  EXPECT_EQ(s.next_free(0), 0);
  s.place(Inst{0, 0}, 0, 2, 6);
  EXPECT_EQ(s.next_free(0), 6);
  EXPECT_EQ(s.next_free(1), 0);
}

TEST(Schedule, RejectsOverlapOnSameProcessor) {
  Schedule s(1);
  s.place(Inst{0, 0}, 0, 0, 3);
  EXPECT_THROW(s.place(Inst{1, 0}, 0, 2, 4), ContractViolation);
  EXPECT_NO_THROW(s.place(Inst{1, 0}, 0, 3, 4));
}

TEST(Schedule, RejectsDuplicateInstance) {
  Schedule s(2);
  s.place(Inst{0, 0}, 0, 0, 1);
  EXPECT_THROW(s.place(Inst{0, 0}, 1, 0, 1), ContractViolation);
}

TEST(Schedule, RejectsBadProcessorAndTimes) {
  Schedule s(2);
  EXPECT_THROW(s.place(Inst{0, 0}, 2, 0, 1), ContractViolation);
  EXPECT_THROW(s.place(Inst{0, 0}, -1, 0, 1), ContractViolation);
  EXPECT_THROW(s.place(Inst{0, 0}, 0, 1, 1), ContractViolation);
}

TEST(Schedule, OnProcessorIsTimeSorted) {
  Schedule s(2);
  s.place(Inst{0, 0}, 0, 0, 1);
  s.place(Inst{1, 0}, 1, 0, 2);
  s.place(Inst{2, 0}, 0, 4, 5);
  const auto ops = s.on_processor(0);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].inst.node, 0u);
  EXPECT_EQ(ops[1].inst.node, 2u);
}

TEST(Schedule, MakespanIsMaxFinish) {
  Schedule s(2);
  EXPECT_EQ(s.makespan(), 0);
  s.place(Inst{0, 0}, 0, 0, 7);
  s.place(Inst{1, 0}, 1, 0, 4);
  EXPECT_EQ(s.makespan(), 7);
}

TEST(DependenceViolation, AcceptsValidSchedule) {
  const Ddg g = workloads::fig7_loop();
  const Machine m{2, 2};
  // Hand schedule of iteration 0 on one processor in topological order.
  Schedule s(2);
  std::int64_t t = 0;
  for (const char* n : {"A", "B", "C", "D", "E"}) {
    s.place(Inst{*g.find(n), 0}, 0, t, t + 1);
    ++t;
  }
  EXPECT_EQ(find_dependence_violation(g, m, s), std::nullopt);
}

TEST(DependenceViolation, FlagsMissingPredecessor) {
  const Ddg g = workloads::fig7_loop();
  const Machine m{2, 2};
  Schedule s(2);
  s.place(Inst{*g.find("B"), 0}, 0, 0, 1);  // B without A
  const auto v = find_dependence_violation(g, m, s);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("not scheduled"), std::string::npos);
  // The same schedule is fine as a declared-partial window.
  EXPECT_EQ(find_dependence_violation(g, m, s, /*partial=*/true),
            std::nullopt);
}

TEST(DependenceViolation, FlagsTooEarlySamProcessorStart) {
  const Ddg g = workloads::fig7_loop();
  const Machine m{2, 2};
  Schedule s(2);
  s.place(Inst{*g.find("A"), 0}, 0, 0, 1);
  s.place(Inst{*g.find("B"), 0}, 1, 0, 1);  // cross-proc, needs A + k
  const auto v = find_dependence_violation(g, m, s);
  ASSERT_TRUE(v.has_value());
  EXPECT_NE(v->find("ready at 3"), std::string::npos);  // 1 + k(2)
}

TEST(DependenceViolation, CrossIterationCommCost) {
  const Ddg g = workloads::fig7_loop();
  const Machine m{2, 2};
  Schedule ok(2);
  const NodeId a = *g.find("A"), b = *g.find("B"), c = *g.find("C"),
               d = *g.find("D"), e = *g.find("E");
  ok.place(Inst{a, 0}, 0, 0, 1);
  ok.place(Inst{b, 0}, 0, 1, 2);
  ok.place(Inst{c, 0}, 0, 2, 3);
  ok.place(Inst{d, 0}, 1, 0, 1);
  ok.place(Inst{e, 0}, 1, 1, 2);
  // A@1 needs A@0 (same proc: >= 1) and E@0 (cross: >= 2 + 2).
  ok.place(Inst{a, 1}, 0, 4, 5);
  EXPECT_EQ(find_dependence_violation(g, m, ok), std::nullopt);

  Schedule bad(2);
  bad.place(Inst{a, 0}, 0, 0, 1);
  bad.place(Inst{b, 0}, 0, 1, 2);
  bad.place(Inst{c, 0}, 0, 2, 3);
  bad.place(Inst{d, 0}, 1, 0, 1);
  bad.place(Inst{e, 0}, 1, 1, 2);
  bad.place(Inst{a, 1}, 0, 3, 4);  // E@0 arrives only at cycle 4
  EXPECT_TRUE(find_dependence_violation(g, m, bad).has_value());
}

TEST(Render, ShowsCellsAndIdleDots) {
  const Ddg g = workloads::fig7_loop();
  Schedule s(2);
  s.place(Inst{*g.find("A"), 0}, 0, 0, 1);
  s.place(Inst{*g.find("D"), 0}, 1, 0, 1);
  s.place(Inst{*g.find("B"), 0}, 0, 1, 2);
  const std::string r = render(s, g);
  EXPECT_NE(r.find("A@0"), std::string::npos);
  EXPECT_NE(r.find("D@0"), std::string::npos);
  EXPECT_NE(r.find("PE0"), std::string::npos);
  EXPECT_NE(r.find("."), std::string::npos);  // PE1 idle at cycle 1
}

TEST(Render, MultiCycleOpsShowContinuation) {
  Ddg g;
  g.add_node("M", 3);
  Schedule s(1);
  s.place(Inst{0, 0}, 0, 0, 3);
  const std::string r = render(s, g);
  EXPECT_NE(r.find("M@0"), std::string::npos);
  EXPECT_NE(r.find("|"), std::string::npos);
}

}  // namespace
}  // namespace mimd
