// Integration tests pinning the paper's headline claims, figure by figure.
// EXPERIMENTS.md records the measured values next to the published ones;
// these tests keep the two from drifting apart.
#include <gtest/gtest.h>

#include "core/mimd.hpp"
#include "workloads/livermore.hpp"
#include "workloads/paper_examples.hpp"
#include "workloads/random_loops.hpp"

namespace mimd {
namespace {

// ---- Figure 3: a pattern emerges under greedy scheduling (k = 1). ----
TEST(PaperResults, Fig3PatternEmerges) {
  const CyclicSchedResult r =
      cyclic_sched(workloads::fig3_loop(), Machine{2, 1});
  ASSERT_TRUE(r.pattern.has_value());
  // The C-D-F ring binds at ratio 3; with k = 1 the greedy settles at 5
  // of the sequential 7 — comfortably ahead of DOACROSS (6).
  EXPECT_GE(r.pattern->initiation_interval(), 3.0);
  EXPECT_LE(r.pattern->initiation_interval(), 5.5);
}

TEST(PaperResults, Fig3BeatsDoacross) {
  const FigureComparison c =
      compare_on(workloads::fig3_loop(), Machine{4, 1}, 60);
  EXPECT_GT(c.sp_ours, c.sp_doacross);
}

// ---- Figures 7/8: Sp = 40% vs 0 (even with optimal reordering). ----
TEST(PaperResults, Fig7HeadlineNumbers) {
  const FigureComparison c =
      compare_on(workloads::fig7_loop(), Machine{4, 2}, 60);
  EXPECT_NEAR(c.sp_ours, 40.0, 1e-6);       // paper: 40
  EXPECT_DOUBLE_EQ(c.sp_doacross, 0.0);     // paper: 0
  const BestReorderResult best =
      best_reorder_doacross(workloads::fig7_loop(), Machine{4, 2}, 60);
  EXPECT_TRUE(best.doacross.degenerated_to_sequential);  // Figure 8(b)
}

// ---- Figures 9/10: Sp = 72.7% vs 31.8%; five subloops in the paper. ----
TEST(PaperResults, CytronHeadlineNumbers) {
  const FigureComparison c =
      compare_on(workloads::cytron86_loop(), Machine{8, 2}, 80);
  EXPECT_NEAR(c.sp_ours, 72.7, 0.1);    // paper: 72.7
  EXPECT_NEAR(c.sp_doacross, 31.8, 0.1);  // paper: 31.8
  // Partitioning: 2 cyclic + 2 flow-in subloops (the paper counts 3
  // flow-in pools from L=11, H=6; our ceil(12/6)=2 — see EXPERIMENTS.md).
  EXPECT_EQ(c.ours.cyclic_processors, 2);
  EXPECT_GE(c.ours.flow_in_processors, 2);
}

// ---- Figure 11: Livermore 18 — paper: 49.4% vs 12.6%. ----
TEST(PaperResults, Livermore18Shape) {
  const FigureComparison c =
      compare_on(workloads::livermore18_loop(), Machine{8, 2}, 80);
  // Reconstructed DDG: the shape must hold (ours far ahead, DOACROSS
  // positive but small); exact values recorded in EXPERIMENTS.md.
  EXPECT_GT(c.sp_ours, 35.0);
  EXPECT_LT(c.sp_doacross, c.sp_ours / 2.0);
  EXPECT_GE(c.sp_doacross, 0.0);
}

// ---- Figure 12: elliptic filter — paper: 30.9% vs 0. ----
TEST(PaperResults, EllipticFilterShape) {
  const FigureComparison c =
      compare_on(workloads::elliptic_filter_loop(), Machine{8, 2}, 80);
  EXPECT_GT(c.sp_ours, 20.0);
  EXPECT_DOUBLE_EQ(c.sp_doacross, 0.0);  // paper: 0 — degenerate
  EXPECT_TRUE(c.doacross_degenerated);
}

// ---- Theorem 1 on every workload in the repository. ----
TEST(PaperResults, Theorem1PatternExistsEverywhere) {
  const Machine m{8, 2};
  for (const auto& [name, g0] : workloads::livermore_suite()) {
    const Ddg g = normalize_distances(g0).graph;
    EXPECT_TRUE(cyclic_sched(g, m).pattern.has_value()) << name;
  }
  EXPECT_TRUE(cyclic_sched(workloads::fig3_loop(), m).pattern.has_value());
  EXPECT_TRUE(cyclic_sched(workloads::fig7_loop(), m).pattern.has_value());
  EXPECT_TRUE(
      cyclic_sched(workloads::elliptic_filter_loop(), m).pattern.has_value());
}

class Theorem1Random : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Random, PatternExistsOnRandomLoops) {
  // Patterns exist per connected component (Section 2.1 + Theorem 1);
  // component_cyclic_sched throws if any component fails to converge.
  const Ddg g = workloads::random_cyclic_loop(GetParam());
  const ComponentSchedResult r = component_cyclic_sched(g, Machine{8, 3});
  EXPECT_FALSE(r.components.empty());
  for (const ComponentPlan& c : r.components) {
    EXPECT_FALSE(c.pattern.kernel.empty());
  }
  // The connected core alone must also converge.  The paper reports
  // M < 10 for its (tightly coupled) examples; for loosely coupled
  // recurrences detection is dominated by the iteration-lead window
  // (see CyclicSchedOptions::lead_window), which bounds M here.
  const Ddg core = workloads::random_connected_cyclic_loop(GetParam());
  const CyclicSchedResult rc = cyclic_sched(core, Machine{8, 3});
  ASSERT_TRUE(rc.pattern.has_value());
  const std::int64_t window =
      2 * (core.body_latency() + 4 * static_cast<std::int64_t>(core.num_nodes())) + 16;
  EXPECT_LE(rc.iterations_scheduled, 8 * window + 256);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Random,
                         ::testing::Range<std::uint64_t>(1, 26));

// ---- Table 1 shape on a subsample (the bench runs the full table). ----
TEST(PaperResults, Table1SubsampleShape) {
  Table1Config cfg;
  cfg.loops = 8;
  cfg.iterations = 80;
  const Table1Result r = run_table1(cfg);
  // Paper Table 1(b): ours 47.4 / 39.1 / 30.3, DOACROSS 16.3 / 13.1 / 9.5,
  // factor 2.9 / 3.0 / 3.3.  On a subsample we assert the ordering and
  // the rough magnitudes.
  EXPECT_GT(r.avg_ours.at(1), r.avg_ours.at(3));
  EXPECT_GT(r.avg_ours.at(3), r.avg_ours.at(5));
  EXPECT_GT(r.avg_ours.at(1), 25.0);
  EXPECT_GT(r.factor.at(1), 1.5);
  for (const int mm : {1, 3, 5}) {
    EXPECT_GT(r.avg_ours.at(mm), r.avg_doacross.at(mm));
  }
}

// ---- The robustness claim: relative advantage survives jitter. ----
TEST(PaperResults, RelativeAdvantageSurvivesWorstCaseJitter) {
  Table1Config cfg;
  cfg.loops = 6;
  cfg.iterations = 80;
  const Table1Result r = run_table1(cfg);
  // "in the presence of unstable communication cost, our relative
  // performance versus DOACROSS actually improves" — at minimum it must
  // not collapse.
  EXPECT_GT(r.avg_ours.at(5), 0.0);
}

}  // namespace
}  // namespace mimd
