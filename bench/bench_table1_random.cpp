// Table 1(a)/(b): 25 random loops (40 nodes, 20 lcd + 20 sd, latencies
// 1..3, Cyclic subset extracted), scheduled at estimated k = 3 and
// executed on the simulated multiprocessor where *every* message takes
// k + mm - 1 cycles (the paper's worst-case regime), mm in {1, 3, 5}.
//
// Per-seed numbers differ from the 1990 table (different RNG, see
// DESIGN.md); the reproduced quantities are the averages and the
// ours-vs-DOACROSS factor (paper: 2.9 / 3.0 / 3.3).
#include <cstdio>
#include <iostream>

#include "core/mimd.hpp"
#include "support/table.hpp"

int main() {
  using namespace mimd;
  Table1Config cfg;  // 25 loops, seeds 1..25, k = 3, mm in {1,3,5}
  const Table1Result r = run_table1(cfg);

  std::puts("=== Table 1(a): percentage parallelism per loop ===\n");
  Table ta({"loop", "x mm=1", "doacross mm=1", "x mm=3", "doacross mm=3",
            "x mm=5", "doacross mm=5"});
  for (const Table1Row& row : r.rows) {
    ta.add_row({std::to_string(row.loop), fmt_fixed(row.sp_ours.at(1), 1),
                fmt_fixed(row.sp_doacross.at(1), 1),
                fmt_fixed(row.sp_ours.at(3), 1),
                fmt_fixed(row.sp_doacross.at(3), 1),
                fmt_fixed(row.sp_ours.at(5), 1),
                fmt_fixed(row.sp_doacross.at(5), 1)});
  }
  std::cout << ta.str() << "\n";

  std::puts("=== Table 1(b): averages ===\n");
  Table tb({"", "mm=1", "mm=3", "mm=5"});
  tb.add_row({"x (ours)", fmt_fixed(r.avg_ours.at(1), 4),
              fmt_fixed(r.avg_ours.at(3), 4), fmt_fixed(r.avg_ours.at(5), 4)});
  tb.add_row({"DOACROSS", fmt_fixed(r.avg_doacross.at(1), 4),
              fmt_fixed(r.avg_doacross.at(3), 4),
              fmt_fixed(r.avg_doacross.at(5), 4)});
  tb.add_row({"factor of speed-up", fmt_fixed(r.factor.at(1), 1),
              fmt_fixed(r.factor.at(3), 1), fmt_fixed(r.factor.at(5), 1)});
  std::cout << tb.str();
  std::puts("\npaper Table 1(b): x 47.40 / 39.07 / 30.28; DOACROSS 16.31 / "
            "13.06 / 9.48; factor 2.9 / 3.0 / 3.3");
  return 0;
}
