// Ablation: unrolling beyond distance normalization.
//
// Fig7's recurrence bound is fractional: MII = 5/2 cycles per iteration.
// A pattern over the original body retires whole iterations on integer
// boundaries, so the best integer steady state is II = 3 (the paper's
// number).  Unrolling by u lets the pattern retire u iterations per
// repetition and approach the fractional bound — the same trick modulo
// schedulers use.  This bench sweeps the unroll factor over loops with
// fractional and integer bounds.
#include <cstdio>
#include <iostream>

#include "core/mimd.hpp"
#include "support/table.hpp"
#include "workloads/livermore.hpp"
#include "workloads/paper_examples.hpp"

int main() {
  using namespace mimd;
  struct Case {
    const char* name;
    Ddg g;
    Machine m;
  };
  const Case cases[] = {
      {"fig7 (MII 5/2)", workloads::fig7_loop(), Machine{4, 2}},
      {"fig3 (MII 3)", workloads::fig3_loop(), Machine{4, 1}},
      {"LL20 (MII 8)", workloads::ll20_discrete_ordinates(), Machine{4, 2}},
  };

  for (const Case& c : cases) {
    const PerfectPipeliningResult pp = perfect_pipelining(c.g);
    std::printf("=== %s, body %lld, bound %.2f, zero-comm greedy %.2f ===\n",
                c.name, static_cast<long long>(c.g.body_latency()),
                max_cycle_ratio(c.g), pp.initiation_interval);
    Table t({"unroll u", "II (unrolled iters)", "II / original iteration",
             "Sp (%)"});
    for (const int u : {1, 2, 3, 4}) {
      const Unrolled un = unroll(c.g, u);
      const CyclicSchedResult r = cyclic_sched(un.graph, c.m);
      if (!r.pattern.has_value()) continue;
      const double ii = r.pattern->initiation_interval();
      const double per_orig = ii / u;
      t.add_row({std::to_string(u), fmt_fixed(ii, 2), fmt_fixed(per_orig, 3),
                 fmt_fixed(percentage_parallelism_asymptotic(
                               c.g.body_latency(), per_orig),
                           1)});
    }
    std::cout << t.str() << "\n";
  }
  std::puts(
      "reading: with zero communication the greedy reaches the fractional\n"
      "bound (fig7: 2.5), which is why Perfect Pipelining needs no unroll\n"
      "sweep.  With k > 0 the communication-aware optimum is already\n"
      "integral on these loops, so unrolling buys nothing — the flat rows\n"
      "are the honest result: the paper's k=2 II of 3 on fig7 is not an\n"
      "integrality artifact but the real comm-constrained steady state.");
  return 0;
}
