#include "support/fault_proxy.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "runtime/wire.hpp"

namespace mimd::test {

namespace {

constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultPlan scripted_plan(std::uint64_t seed, std::uint64_t conn) {
  const std::uint64_t r = mix64(seed ^ mix64(conn));
  FaultPlan plan;
  switch (r % 4) {
    case 0:  // clean pass-through
      break;
    case 1:  // refuse outright
      plan.refuse = true;
      break;
    case 2:  // truncate the request stream at a small offset: the 5-byte
             // frame header makes any cut below a few hundred bytes land
             // mid-frame for real programs
      plan.close_after_client_bytes = 1 + (r >> 8) % 256;
      break;
    default:  // truncate the reply stream
      plan.close_after_server_bytes = 1 + (r >> 8) % 256;
      break;
  }
  return plan;
}

/// One proxied connection: both fds and both pump threads.  `cut` makes
/// whichever pump hits its budget first take down the other direction
/// too — a mid-frame hard cut, not a graceful close.
struct FaultProxy::Conn {
  int client_fd = -1;
  int upstream_fd = -1;
  std::atomic<bool> cut{false};
  std::thread up;    // client -> upstream
  std::thread down;  // upstream -> client
};

FaultProxy::FaultProxy(std::string upstream) : upstream_(std::move(upstream)) {
  const auto [fd, port] = wire::listen_tcp("127.0.0.1", 0, 16);
  listen_fd_ = fd;
  port_ = port;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

FaultProxy::~FaultProxy() { stop(); }

std::string FaultProxy::endpoint() const {
  return "127.0.0.1:" + std::to_string(port_);
}

void FaultProxy::set_plan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lk(mu_);
  plan_ = plan;
}

void FaultProxy::pump(int from, int to, std::size_t budget, std::size_t stall,
                      int delay_ms, Conn* conn) {
  std::vector<char> buf(4096);
  std::size_t forwarded = 0;
  while (!conn->cut.load()) {
    const ssize_t n = ::recv(from, buf.data(), buf.size(), 0);
    if (n <= 0) break;
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    if (forwarded >= stall) continue;  // stalled: drain silently, stay open
    const std::size_t allow = std::min(
        {static_cast<std::size_t>(n), budget - forwarded, stall - forwarded});
    std::size_t sent = 0;
    while (sent < allow) {
      const ssize_t w =
          ::send(to, buf.data() + sent, allow - sent, MSG_NOSIGNAL);
      if (w <= 0) {
        conn->cut.store(true);
        break;
      }
      sent += static_cast<std::size_t>(w);
    }
    forwarded += sent;
    if (forwarded >= budget) {
      // Budget exhausted: hard-cut BOTH sockets so the peer sees EOF (or
      // ECONNRESET) mid-frame, exactly the fault under test.
      conn->cut.store(true);
      break;
    }
  }
  ::shutdown(conn->client_fd, SHUT_RDWR);
  ::shutdown(conn->upstream_fd, SHUT_RDWR);
}

void FaultProxy::accept_loop() {
  for (;;) {
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (stopping_.load()) return;
      continue;
    }
    connections_.fetch_add(1);
    FaultPlan plan;
    {
      std::lock_guard<std::mutex> lk(mu_);
      plan = plan_;
    }
    if (plan.refuse) {
      ::close(cfd);
      continue;
    }
    int ufd = -1;
    try {
      ufd = wire::connect_endpoint(wire::parse_endpoint(upstream_));
    } catch (const wire::WireError&) {
      ::close(cfd);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->client_fd = cfd;
    conn->upstream_fd = ufd;
    Conn* c = conn.get();
    conn->up = std::thread([c, plan] {
      pump(c->client_fd, c->upstream_fd, plan.close_after_client_bytes,
           std::numeric_limits<std::size_t>::max(), plan.delay_ms, c);
    });
    conn->down = std::thread([c, plan] {
      pump(c->upstream_fd, c->client_fd, plan.close_after_server_bytes,
           plan.stall_after_server_bytes, plan.delay_ms, c);
    });
    std::lock_guard<std::mutex> lk(mu_);
    conns_.push_back(std::move(conn));
  }
}

void FaultProxy::stop() {
  if (stopping_.exchange(true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    c->cut.store(true);
    ::shutdown(c->client_fd, SHUT_RDWR);
    ::shutdown(c->upstream_fd, SHUT_RDWR);
    if (c->up.joinable()) c->up.join();
    if (c->down.joinable()) c->down.join();
    ::close(c->client_fd);
    ::close(c->upstream_fd);
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
}

}  // namespace mimd::test
