// Minimal ASCII table renderer used by the benchmark harnesses to print
// paper-style tables (Table 1(a)/(b) and the per-figure comparison rows).
#pragma once

#include <string>
#include <vector>

namespace mimd {

/// Column-aligned ASCII table. Rows are strings; numeric formatting is the
/// caller's job (see fmt_fixed below). Example:
///
///   Table t({"loop", "x", "doacross"});
///   t.add_row({"0", "51.8", "26.8"});
///   std::cout << t.str();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Insert a horizontal rule before the next row.
  void add_rule();

  [[nodiscard]] std::string str() const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == rule
};

/// Fixed-point formatting helper: fmt_fixed(72.727, 1) == "72.7".
std::string fmt_fixed(double v, int decimals);

}  // namespace mimd
