// The rewrite-pass interface: a Pass rewrites a Loop in place, seeing
// the dependence analysis (IR + DDG) computed for the loop *as it
// currently stands* — the PassManager in opt/pipeline.hpp re-analyzes
// before every pass invocation, so a pass never observes a stale graph.
//
// Contract (PASSES.md has the per-pass legality arguments):
//   * input is if-converted (assign-only) — asserted by the pipeline;
//   * the pass must preserve the observable value streams of
//     opt/eval.hpp bit-for-bit;
//   * run() returns the number of rewrites applied; 0 means the pass is
//     at a fixed point for this loop, which is what terminates the
//     pipeline's fixed-point iteration.
#pragma once

#include <string>
#include <string_view>

#include "ir/dependence.hpp"
#include "ir/loop.hpp"

namespace mimd::opt {

class Pass {
 public:
  virtual ~Pass() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Rewrites `loop` in place; `deps` is the dependence analysis of the
  /// loop exactly as passed in.  Returns the number of rewrites applied.
  virtual int run(ir::Loop& loop, const ir::DependenceResult& deps) = 0;
};

/// Per-pass accounting across all fixed-point rounds.
struct PassStats {
  std::string name;
  int rewrites = 0;    ///< total rewrites (fission: strands emitted)
  int rounds_run = 0;  ///< invocations before the pipeline converged
};

}  // namespace mimd::opt
