// Source-level rendering of a partitioned loop, in the style of the
// paper's Figures 7(e) and 10: a PARBEGIN/PAREND block with one entry per
// processor, each containing its prologue straight-line code and its
// steady-state FOR loop with SEND/RECEIVE synchronization.
//
// The library does not know the original source expressions, so a node A
// with operands B (distance 0) and C (distance 1) renders as
//   A[I] = f(B[I], C[I-1]).
#pragma once

#include <string>

#include "graph/ddg.hpp"
#include "partition/partitioned_loop.hpp"
#include "schedule/pattern.hpp"

namespace mimd {

/// Paper-style pseudo-code for the steady-state pattern.  `loop_bound_name`
/// is the symbolic trip count (the paper's M or N).
std::string emit_parbegin(const Pattern& pat, const Ddg& g,
                          const std::string& loop_bound_name = "M");

/// Flat listing of a lowered finite program (debugging / inspection);
/// at most `max_ops` ops per processor are printed.
std::string emit_listing(const PartitionedProgram& prog, const Ddg& g,
                         std::size_t max_ops = 48);

}  // namespace mimd
