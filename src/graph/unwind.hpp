// Loop unwinding (unrolling) over the DDG.
//
// The scheduler requires every dependence distance to be 0 or 1
// (Section 2.1: "if the dependence distances are greater than one, we can
// reduce them down to one or zero by unwinding the loop properly, as
// explained in [MuSi87]").  Unrolling by factor u replaces the body with u
// consecutive iterations; an edge (s -> d, distance q) becomes, for each
// copy r in [0,u), an edge (s#r -> d#((r+q) mod u)) with new distance
// floor((r+q)/u).  Choosing u = max distance makes all new distances 0/1.
#pragma once

#include <vector>

#include "graph/ddg.hpp"

namespace mimd {

/// Result of unrolling: the new graph plus the mapping back to the original.
struct Unrolled {
  Ddg graph;
  int factor = 1;
  /// origin[new_node] = {original node, copy index r in [0, factor)}.
  /// Instance (new_node, j) of the unrolled loop is instance
  /// (origin[new_node].node, j*factor + origin[new_node].copy) of the
  /// original loop.
  struct Origin {
    NodeId node;
    int copy;
  };
  std::vector<Origin> origin;
};

/// Unroll the loop `factor` times (factor >= 1). Copy r of node X is named
/// "X#r" for r > 0; copy 0 keeps the original name.
Unrolled unroll(const Ddg& g, int factor);

/// Unroll just enough that every distance is in {0, 1}.  Identity (factor 1)
/// if the graph is already normalized.
Unrolled normalize_distances(const Ddg& g);

}  // namespace mimd
