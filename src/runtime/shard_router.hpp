// ShardRouter — the client half of a mimdd *fleet*: N plan-service
// daemons (each with its own PlanCache + WorkerPool) behind one routing
// object that consistent-hashes programs across them by structural hash.
//
// Why hash by structure: the fleet's whole point is cache amortization at
// a scale one daemon's memory cannot hold.  Routing on
// structural_hash(program, graph, copts) — the exact key PlanCache uses —
// guarantees every structurally identical loop lands on the SAME shard's
// warm cache, so fleet-wide there is still exactly one compile per unique
// structure (bench/bench_plan_service.cpp's A/B proves this with the
// shards' miss counters).
//
// The ring: each shard contributes `vnodes_per_shard` points, hashed from
// its *endpoint string* (not its index), so the placement of every
// existing shard's points is independent of list order and of shards
// added later.  Adding one shard to an N-shard fleet therefore remaps
// only ~1/(N+1) of the keyspace (tests/test_shard_router.cpp pins this).
// A key routes to the first point at or after it on the ring; walking
// further yields the failover preference order.
//
// Health and failover: each shard has one lazily connected PlanClient.
// Connect failures are retried with doubling backoff; when retries are
// exhausted — or an established connection dies mid-conversation
// (wire::WireError) — the shard is marked dead for `dead_cooldown_ms` and
// the affected jobs are rerouted to the next live shard in their ring
// order.  Re-running is safe: submit+run is idempotent and bit-exact, so
// a job that may have executed on a dying shard just executes again on
// its successor.  A RemoteError (the server *replied*, rejecting the
// request) is the caller's problem and is rethrown — it is not a health
// event.  Only when every shard is dead does run_jobs throw WireError.
//
// Threading: run_jobs dispatches one thread per shard that owns work
// this round; a shard's client is only ever touched by the single thread
// handling that shard's group (plus the caller between calls) — the
// shared-nothing discipline again, now client-side.  A ShardRouter
// itself is single-caller, like PlanClient.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runtime/plan_client.hpp"

namespace mimd {

struct ShardRouterOptions {
  /// One entry per shard, any wire::parse_endpoint form ("unix:/run/a",
  /// "127.0.0.1:7070", ...).  Order does not affect routing.
  std::vector<std::string> endpoints;
  /// Per-operation socket timeout (SO_RCVTIMEO/SO_SNDTIMEO), 0 = none.
  /// A fleet over real networks should set this: it turns a hung shard
  /// into a WireError, which is a failover, not a hang.
  int timeout_ms = 0;
  /// Connect attempts per shard before it is declared dead.
  int connect_attempts = 3;
  /// Backoff between connect attempts, doubling from initial to max.
  int connect_backoff_initial_ms = 10;
  int connect_backoff_max_ms = 200;
  /// Ring points per shard.  More vnodes = smoother key distribution;
  /// 64 keeps the max/mean shard load under ~1.3x for small fleets.
  std::size_t vnodes_per_shard = 64;
  /// How long a dead shard is skipped before the router probes it again.
  int dead_cooldown_ms = 1000;
};

/// One routed unit of work: a program to (re)submit plus how to run it.
struct ShardJob {
  PartitionedProgram program;
  Ddg graph;
  CompileOptions copts;
  /// 0 = the program's own compiled iteration count.
  std::int64_t iterations = 0;
  wire::RemoteRunOptions run_opts;
};

/// fleet_stats() row: one shard's identity, reachability, and counters.
struct ShardStatsRow {
  std::string endpoint;
  bool alive = false;
  wire::StatsReply stats;  ///< valid only when alive
};

class ShardRouter {
 public:
  explicit ShardRouter(ShardRouterOptions opts);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return endpoints_.size(); }
  [[nodiscard]] const std::vector<std::string>& endpoints() const {
    return endpoints_;
  }

  /// The routing key for a job: structural_hash(program, graph, copts),
  /// i.e. the shard-local PlanCache key.
  [[nodiscard]] static std::uint64_t route_key(const PartitionedProgram& p,
                                               const Ddg& g,
                                               const CompileOptions& copts);

  /// Pure ring lookup (health ignored): the shard index `key` maps to.
  /// Deterministic across router instances built from the same endpoint
  /// strings — the same-hash-same-shard invariant the tests pin.
  [[nodiscard]] std::size_t shard_for(std::uint64_t key) const;

  /// Failover preference order for `key`: every shard index exactly once,
  /// starting at shard_for(key), in ring-walk order.
  [[nodiscard]] std::vector<std::size_t> preference_order(
      std::uint64_t key) const;

  /// Route and execute `jobs` across the fleet; results in job order.
  /// Shards are driven concurrently (one thread per shard with work).
  /// Dead shards fail over per the class comment; throws wire::WireError
  /// once every shard is dead, and rethrows RemoteError untouched.
  [[nodiscard]] std::vector<ExecutionResult> run_jobs(
      const std::vector<ShardJob>& jobs);

  /// Single-job convenience over run_jobs.
  [[nodiscard]] ExecutionResult run_one(const ShardJob& job);

  /// Release a program this router previously submitted: sends
  /// DropProgram to every shard whose submitted-id cache holds the
  /// program's routing key and invalidates the cache entry on ack, so
  /// the next run_jobs with the same program re-submits cleanly.
  /// Returns true if any shard held (and dropped) it.  A shard that
  /// already forgot the id — registry turnover or a dead connection —
  /// counts as dropped: both sides have forgotten it.
  bool drop_program(const PartitionedProgram& program, const Ddg& graph,
                    const CompileOptions& copts = {});

  /// Stats from every shard (rows in endpoint order).  A shard that
  /// cannot be reached right now reports alive=false instead of throwing.
  [[nodiscard]] std::vector<ShardStatsRow> fleet_stats();

  /// Send Shutdown to every reachable shard; unreachable shards are
  /// skipped (they are already down).
  void shutdown_fleet();

  /// Test hook: force a shard into the dead state (as if its connection
  /// had just failed) so failover paths can be exercised without a
  /// network fault.
  void mark_dead(std::size_t shard);

  /// Test hook: true while `shard` is inside its dead cooldown.
  [[nodiscard]] bool is_dead(std::size_t shard) const;

 private:
  struct Shard;  // client + health; defined in shard_router.cpp

  /// Connected client for `shard`, dialing (with retry/backoff) if
  /// needed.  Throws wire::WireError after the last attempt fails.
  PlanClient& ensure_connected(std::size_t shard);
  void note_failure(std::size_t shard);

  ShardRouterOptions opts_;
  std::vector<std::string> endpoints_;
  /// Sorted ring of (point, shard index).
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace mimd
